"""SMC particle filtering vs per-window StEM reruns under overlap.

The SMC estimator's claim is a latency crossover, not a universal win:
a StEM window always pays one initialization plus ``stem_iterations``
coupled sweep/M-step rounds over the window's tasks, so its cost per
window is flat in the step size — halving the step doubles the total
work for the same stream.  The particle filter pays a vectorized
reweight per window and runs Gibbs only on ESS triggers, so as windows
overlap more (``step`` shrinking below ``window``) most windows cost
O(new arrivals) and the amortized per-window latency falls.

This benchmark replays one tandem stream at several overlap factors
``window/step`` and times both estimators end to end.  The acceptance
gate is the crossover the live tier cares about: at overlap 4x
(``step = window/4``) and beyond, the SMC pass must be strictly faster
than the StEM pass, and its rejuvenation count must stay below the
window count (i.e. the win must come from the O(arrival) path actually
engaging, not from noise).  Statistical agreement between the two
estimators is pinned separately by
``tests/test_estimator_contract.py``; this file measures cost only.

The result is written to ``BENCH_smc.json`` so the workflow can archive
the perf trajectory across PRs.
"""

import json
import os
import time

import numpy as np

from repro.experiments import render_table
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import EstimatorConfig, ReplayTraceStream, get_estimator
from repro.simulate import simulate_network

from conftest import full_scale

#: Where the machine-readable result lands (uploaded as a CI artifact).
RESULT_PATH = "BENCH_smc.json"

#: window/step ratios measured; the gate applies from GATED_OVERLAP up.
OVERLAPS = (1, 2, 4, 8)
GATED_OVERLAP = 4


def make_trace(n_tasks: int, seed: int = 19):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=seed)
    horizon = float(np.nanmax(sim.events.departure))
    return sim, trace, horizon


def run_estimator(name, trace, horizon, overlap, seed=7):
    """One full pass over the stream; returns (seconds, estimator, windows)."""
    window = horizon / 4
    config = EstimatorConfig(
        window=window,
        step=window / overlap,
        stem_iterations=6,
        n_particles=8,
    )
    estimator = get_estimator(name)(
        ReplayTraceStream(trace), random_state=seed, config=config
    )
    t0 = time.perf_counter()
    windows = estimator.run()
    return time.perf_counter() - t0, estimator, windows


def test_smc_crossover_under_overlap(benchmark):
    n_tasks = 700 if not full_scale() else 3000
    sim, trace, horizon = make_trace(n_tasks)
    cpus = len(os.sched_getaffinity(0))

    def run():
        # Best-of-2 per (estimator, overlap), alternating, so one
        # co-tenancy noise spike on a shared CI runner cannot flip the
        # strict crossover gate.
        rows = {}
        for overlap in OVERLAPS:
            stem_s = smc_s = float("inf")
            stem_windows = smc_windows = None
            n_rejuvenations = 0
            for _ in range(2):
                seconds, _, stem_windows = run_estimator(
                    "stem", trace, horizon, overlap
                )
                stem_s = min(stem_s, seconds)
                seconds, est, smc_windows = run_estimator(
                    "smc", trace, horizon, overlap
                )
                smc_s = min(smc_s, seconds)
                n_rejuvenations = est.n_rejuvenations
            rows[overlap] = (stem_s, smc_s, stem_windows, smc_windows,
                             n_rejuvenations)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    result_rows = []
    for overlap, (stem_s, smc_s, stem_w, smc_w, n_rej) in rows.items():
        n_windows = len(smc_w)
        ok_stem = sum(1 for w in stem_w if w.ok)
        ok_smc = sum(1 for w in smc_w if w.ok)
        table.append((
            f"window/{overlap}", n_windows,
            f"{stem_s:.2f}", f"{1e3 * stem_s / n_windows:.0f}",
            f"{smc_s:.2f}", f"{1e3 * smc_s / n_windows:.0f}",
            f"{n_rej}/{n_windows}", f"{stem_s / smc_s:.2f}x",
        ))
        result_rows.append({
            "overlap": overlap,
            "n_windows": n_windows,
            "stem_seconds": stem_s,
            "smc_seconds": smc_s,
            "ok_stem_windows": ok_stem,
            "ok_smc_windows": ok_smc,
            "smc_rejuvenations": n_rej,
            "speedup": stem_s / smc_s,
        })
    print(f"\n=== SMC vs per-window StEM under overlap "
          f"({sim.events.n_events} events, window = horizon/4, "
          f"{cpus} cpu) ===")
    print(render_table(
        ["step", "windows", "stem s", "stem ms/win",
         "smc s", "smc ms/win", "rejuv", "speedup"],
        table,
        title="same stream, same window grid; SMC reweights per window "
        "and runs Gibbs only on ESS triggers",
    ))
    result = {
        "benchmark": "smc_vs_stem_overlap",
        "n_events": int(sim.events.n_events),
        "window": horizon / 4,
        "gated_overlap": GATED_OVERLAP,
        "cpus": cpus,
        "rows": result_rows,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    print(f"wrote {RESULT_PATH}")
    # Acceptance: both estimators must actually estimate, the O(arrival)
    # path must engage (rejuvenations strictly below the window count),
    # and from the gated overlap up SMC must win on wall clock.
    for row in result_rows:
        assert row["ok_stem_windows"] > 0 and row["ok_smc_windows"] > 0, (
            f"overlap {row['overlap']}: no window produced an estimate"
        )
        if row["overlap"] < GATED_OVERLAP:
            continue
        assert row["smc_rejuvenations"] < row["n_windows"], (
            f"overlap {row['overlap']}: every window triggered rejuvenation "
            "— the reweight path never amortized anything"
        )
        assert row["smc_seconds"] < row["stem_seconds"], (
            f"overlap {row['overlap']}: SMC slower than per-window StEM "
            f"({row['smc_seconds']:.2f}s vs {row['stem_seconds']:.2f}s)"
        )
