"""End-to-end ingest throughput and window-publish latency of repro.live.

The live subsystem's claim is operational: measurement records stream in
over TCP from concurrent clients, and window estimates come out of the
query endpoint shortly after the watermark seals each window — an
always-on service, not a batch job.  This benchmark measures the whole
loop on a simulated webapp trace (the paper's Section 5.2 workload):

* **ingest throughput** — records/second admitted across two concurrent
  synthetic clients shipping the entry-ordered replay schedule (batches
  interleaved task-wise, watermark advanced alongside);
* **window-publish latency** — wall-clock delay from the moment a
  window's population became final (the watermark/seal passed its end)
  to the moment the service published its estimate, which bundles the
  StEM solve itself with every queueing/scheduling overhead in between;
* **steady-state memory + per-window latency** — a long compacting
  stream driven through the ingest -> watermark -> window -> compact
  cycle, reporting the warm-vs-tail per-window latency ratio (a flat
  ratio is the no-O(history) guarantee), the retained container sizes,
  and the checkpoint snapshot size at the end of the run.

Results land in ``BENCH_live.json`` (uploaded as a CI artifact); the CI
smoke asserts the service finishes, every grid window is published, and
throughput clears a deliberately loose floor — perf trajectory is read
from the artifact history, regressions from the assertions.
"""

import json
import os
import pickle
import threading
import time

import numpy as np

from repro.experiments import render_table
from repro.live import EstimatorService, LiveClient, LiveServer, LiveTraceStream
from repro.live.records import replay_batches
from repro.observation import TaskSampling
from repro.online import StreamingEstimator
from repro.webapp import WebAppConfig, generate_webapp_trace

from conftest import full_scale

#: Where the machine-readable result lands (uploaded as a CI artifact).
RESULT_PATH = "BENCH_live.json"

#: Deliberately loose floor: catches "the server serialized everything
#: through one lock" class regressions, not scheduler noise.
MIN_RECORDS_PER_SECOND = 100.0

#: The steady-state tail may be this much slower than the warm early
#: batches — far inside any O(history) trend, far outside timer noise.
MAX_TAIL_TO_WARM_RATIO = 4.0


def merge_result(key: str, payload: dict) -> None:
    """Merge one benchmark's result into ``BENCH_live.json``.

    Both tests in this module report into the same artifact; each owns a
    top-level key so whichever runs second doesn't clobber the first.
    """
    data: dict = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = {}
    if "benchmark" in data:  # pre-merge flat layout from an older run
        data = {str(data["benchmark"]): data}
    data[key] = payload
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)


def test_live_serving_throughput_and_latency(benchmark):
    n_requests = 400 if not full_scale() else 2000
    sim = generate_webapp_trace(WebAppConfig(n_requests=n_requests), random_state=5)
    trace = TaskSampling(fraction=0.25).observe(sim.events, random_state=2)
    horizon = float(np.nanmax(sim.events.departure))
    n_windows = 6
    window = horizon / n_windows
    batches = replay_batches(trace, batch_tasks=16)

    def run():
        # Two unpaced clients interleave batches, so one can race its
        # watermark ahead of the other's in-flight measurements; a
        # lateness bound covering the whole replayed clock keeps those
        # legitimately-late records admitted (asserted: zero stragglers).
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, lateness=horizon
        )
        estimator = StreamingEstimator(
            stream, window=window, stem_iterations=5, random_state=7
        )
        service = EstimatorService(estimator, poll_interval=0.01)
        window_ready_at: dict[int, float] = {}

        def note_ready(watermark: float) -> None:
            # Window i's population is final once the watermark clears
            # its end; the publish latency clock starts here.  (A couple
            # of spare slots: float rounding of horizon/n_windows can put
            # one more window on the service's grid than planned.)
            for i in range(n_windows + 2):
                if i not in window_ready_at and watermark >= (i + 1) * window:
                    window_ready_at[i] = time.time()

        def client_loop(my_batches, counters, index):
            client = LiveClient(server.address, authkey=b"bench")
            shipped = 0
            with client:
                for watermark, batch in my_batches:
                    client.advance_watermark(watermark)
                    note_ready(watermark)
                    client.ingest(batch)
                    shipped += len(batch)
            counters[index] = shipped

        with service.start(), LiveServer(service, authkey=b"bench") as server:
            counters = [0, 0]
            # Two concurrent producers, batches interleaved task-wise;
            # watermark advances race (monotone max) but stay harmless
            # under the lateness bound above.
            threads = [
                threading.Thread(
                    target=client_loop,
                    args=(batches[i::2], counters, i),
                    daemon=True,
                )
                for i in range(2)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ingest_seconds = time.perf_counter() - t0
            seal_client = LiveClient(server.address, authkey=b"bench")
            with seal_client:
                seal_client.seal()
            seal_at = time.time()
            deadline = time.time() + 300.0
            while time.time() < deadline:
                health = service.health()
                if health["status"] in ("finished", "failed"):
                    break
                time.sleep(0.02)
            assert health["status"] == "finished", health["error"]
        published = service.windows()
        # Windows whose populations only the seal finalized (the grid
        # tail) start their latency clock at the seal.
        latencies = [
            max(published_at - window_ready_at.get(i, seal_at), 0.0)
            for i, published_at in enumerate(service.published_at)
        ]
        return sum(counters), ingest_seconds, published, latencies, health

    shipped, ingest_seconds, published, latencies, health = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    throughput = shipped / max(ingest_seconds, 1e-9)
    ok = [w for w in published if w.ok]
    rows = [
        ("records shipped (2 clients)", f"{shipped}"),
        ("ingest wall time", f"{ingest_seconds:.2f} s"),
        ("ingest throughput", f"{throughput:.0f} records/s"),
        ("windows published / grid", f"{len(published)} / {health['windows_published']}"),
        ("windows with estimates", f"{len(ok)}"),
        ("publish latency mean", f"{np.mean(latencies):.3f} s"),
        ("publish latency max", f"{np.max(latencies):.3f} s"),
    ]
    print(f"\n=== Live serving: ingest -> estimate -> query "
          f"({trace.skeleton.n_events} events, {n_windows} windows, "
          f"{len(os.sched_getaffinity(0))} cpu) ===")
    print(render_table(["metric", "value"], rows))
    result = {
        "benchmark": "live_serving",
        "n_events": int(trace.skeleton.n_events),
        "n_requests": int(n_requests),
        "n_windows": len(published),
        "records_shipped": int(shipped),
        "ingest_seconds": ingest_seconds,
        "ingest_records_per_second": throughput,
        "publish_latency_mean_seconds": float(np.mean(latencies)),
        "publish_latency_max_seconds": float(np.max(latencies)),
        "windows_ok": len(ok),
    }
    merge_result("live_serving", result)
    print(f"wrote {RESULT_PATH}")
    # Acceptance: every shipped record made it in (the racing watermarks
    # really were harmless), the service drained the whole grid, estimated
    # something, and ingestion was not pathologically serialized.
    assert health["n_stragglers"] == 0, (
        f"{health['n_stragglers']} records dropped as stragglers — the "
        "lateness bound no longer covers the client race"
    )
    assert health["n_admitted"] == shipped
    # Float rounding of horizon/n_windows can move the grid's window
    # count by one in either direction; off-by-more means lost windows.
    assert abs(len(published) - n_windows) <= 1
    assert ok, "no window produced an estimate"
    assert throughput > MIN_RECORDS_PER_SECOND, (
        f"ingest throughput {throughput:.0f} records/s below the "
        f"{MIN_RECORDS_PER_SECOND:.0f}/s floor"
    )


def test_steady_state_compaction_memory_and_latency(benchmark):
    """Per-window latency and memory of a long compacting stream.

    Drives the same ingest -> watermark -> window -> compact cycle a
    deployed service runs, with a retention horizon set and estimation
    stubbed out (``min_observed_tasks`` is unreachable) so the numbers
    isolate the stream machinery — assembly, reveal, compaction — which
    is exactly where the old lazy-rebuild path degraded with history.
    """
    n_tasks = 20_000 if not full_scale() else 120_000
    batch, dt, retain = 1000, 0.01, 50.0
    window = batch * dt  # one estimator window per ingest batch
    n_batches = n_tasks // batch

    def make_batch(start_task: int, t0: float) -> list[dict]:
        records = []
        for i in range(batch):
            task = start_task + i
            entry = t0 + i * dt
            records.append(
                {"task": task, "seq": 0, "queue": 0, "counter": task}
            )
            records.append(
                {"task": task, "seq": 1, "queue": 1, "counter": task,
                 "arrival": entry}
            )
            records.append(
                {"task": task, "seq": 2, "queue": 2, "counter": task,
                 "arrival": entry + 0.4, "departure": entry + 0.9,
                 "last": True}
            )
        return records

    def run():
        stream = LiveTraceStream(n_queues=3, retain=retain)
        estimator = StreamingEstimator(
            stream, window=window, stem_iterations=1, random_state=3,
            min_observed_tasks=10**9,
        )
        window_seconds = []
        t = 0.0
        for b in range(n_batches):
            records = make_batch(b * batch, t)
            start = time.perf_counter()
            stream.ingest(records)
            t += window
            stream.advance_watermark(t)
            while (estimator.n_windows_done + 1) * estimator.step <= t:
                estimator.process_window(
                    estimator.n_windows_done * estimator.step
                )
            stream.trace  # the per-window assembly access
            window_seconds.append(time.perf_counter() - start)
        snapshot_bytes = len(pickle.dumps(stream.snapshot_state()))
        return window_seconds, stream.memory_stats(), snapshot_bytes

    window_seconds, stats, snapshot_bytes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    warm = window_seconds[max(2, n_batches // 10): max(3, n_batches // 4)]
    tail = window_seconds[-max(1, n_batches // 4):]
    ratio = float(np.median(tail)) / float(np.median(warm))
    horizon_tasks = retain / dt + batch
    rows = [
        ("records streamed", f"{3 * n_batches * batch}"),
        ("windows processed", f"{n_batches}"),
        ("retention horizon", f"{retain:.0f} clock (~{horizon_tasks:.0f} tasks)"),
        ("per-window latency (warm median)", f"{np.median(warm) * 1e3:.2f} ms"),
        ("per-window latency (tail median)", f"{np.median(tail) * 1e3:.2f} ms"),
        ("tail / warm ratio", f"{ratio:.2f}"),
        ("retained tasks at end", f"{stats['retained_tasks']}"),
        ("retained events at end", f"{stats['retained_events']}"),
        ("compacted tasks", f"{stats['compacted_tasks']}"),
        ("checkpoint snapshot size", f"{snapshot_bytes / 1024:.0f} KiB"),
    ]
    print(f"\n=== Live serving: steady-state compaction "
          f"({n_batches} windows, retain={retain:.0f}) ===")
    print(render_table(["metric", "value"], rows))
    merge_result("steady_state_compaction", {
        "n_records": int(3 * n_batches * batch),
        "n_windows": int(n_batches),
        "retain": retain,
        "window_latency_warm_median_seconds": float(np.median(warm)),
        "window_latency_tail_median_seconds": float(np.median(tail)),
        "window_latency_max_seconds": float(np.max(window_seconds)),
        "tail_to_warm_ratio": ratio,
        "retained_tasks": int(stats["retained_tasks"]),
        "retained_events": int(stats["retained_events"]),
        "compacted_tasks": int(stats["compacted_tasks"]),
        "snapshot_bytes": int(snapshot_bytes),
    })
    print(f"wrote {RESULT_PATH}")
    # Acceptance: no O(history) trend in the per-window cycle, and every
    # container plateaued at the horizon size instead of the stream age.
    assert ratio < MAX_TAIL_TO_WARM_RATIO, (
        f"steady-state tail is {ratio:.1f}x the warm median — the "
        "per-window cycle is growing with stream age again"
    )
    assert stats["retained_tasks"] <= 2 * horizon_tasks
    assert stats["compacted_tasks"] >= n_batches * batch - 2 * horizon_tasks
