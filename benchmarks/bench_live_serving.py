"""End-to-end ingest throughput and window-publish latency of repro.live.

The live subsystem's claim is operational: measurement records stream in
over TCP from concurrent clients, and window estimates come out of the
query endpoint shortly after the watermark seals each window — an
always-on service, not a batch job.  This benchmark measures the whole
loop on a simulated webapp trace (the paper's Section 5.2 workload):

* **ingest throughput** — records/second admitted across two concurrent
  synthetic clients shipping the entry-ordered replay schedule (batches
  interleaved task-wise, watermark advanced alongside);
* **window-publish latency** — wall-clock delay from the moment a
  window's population became final (the watermark/seal passed its end)
  to the moment the service published its estimate, which bundles the
  StEM solve itself with every queueing/scheduling overhead in between.

Results land in ``BENCH_live.json`` (uploaded as a CI artifact); the CI
smoke asserts the service finishes, every grid window is published, and
throughput clears a deliberately loose floor — perf trajectory is read
from the artifact history, regressions from the assertions.
"""

import json
import os
import threading
import time

import numpy as np

from repro.experiments import render_table
from repro.live import EstimatorService, LiveClient, LiveServer, LiveTraceStream
from repro.live.records import replay_batches
from repro.observation import TaskSampling
from repro.online import StreamingEstimator
from repro.webapp import WebAppConfig, generate_webapp_trace

from conftest import full_scale

#: Where the machine-readable result lands (uploaded as a CI artifact).
RESULT_PATH = "BENCH_live.json"

#: Deliberately loose floor: catches "the server serialized everything
#: through one lock" class regressions, not scheduler noise.
MIN_RECORDS_PER_SECOND = 100.0


def test_live_serving_throughput_and_latency(benchmark):
    n_requests = 400 if not full_scale() else 2000
    sim = generate_webapp_trace(WebAppConfig(n_requests=n_requests), random_state=5)
    trace = TaskSampling(fraction=0.25).observe(sim.events, random_state=2)
    horizon = float(np.nanmax(sim.events.departure))
    n_windows = 6
    window = horizon / n_windows
    batches = replay_batches(trace, batch_tasks=16)

    def run():
        # Two unpaced clients interleave batches, so one can race its
        # watermark ahead of the other's in-flight measurements; a
        # lateness bound covering the whole replayed clock keeps those
        # legitimately-late records admitted (asserted: zero stragglers).
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, lateness=horizon
        )
        estimator = StreamingEstimator(
            stream, window=window, stem_iterations=5, random_state=7
        )
        service = EstimatorService(estimator, poll_interval=0.01)
        window_ready_at: dict[int, float] = {}

        def note_ready(watermark: float) -> None:
            # Window i's population is final once the watermark clears
            # its end; the publish latency clock starts here.  (A couple
            # of spare slots: float rounding of horizon/n_windows can put
            # one more window on the service's grid than planned.)
            for i in range(n_windows + 2):
                if i not in window_ready_at and watermark >= (i + 1) * window:
                    window_ready_at[i] = time.time()

        def client_loop(my_batches, counters, index):
            client = LiveClient(server.address, authkey=b"bench")
            shipped = 0
            with client:
                for watermark, batch in my_batches:
                    client.advance_watermark(watermark)
                    note_ready(watermark)
                    client.ingest(batch)
                    shipped += len(batch)
            counters[index] = shipped

        with service.start(), LiveServer(service, authkey=b"bench") as server:
            counters = [0, 0]
            # Two concurrent producers, batches interleaved task-wise;
            # watermark advances race (monotone max) but stay harmless
            # under the lateness bound above.
            threads = [
                threading.Thread(
                    target=client_loop,
                    args=(batches[i::2], counters, i),
                    daemon=True,
                )
                for i in range(2)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ingest_seconds = time.perf_counter() - t0
            seal_client = LiveClient(server.address, authkey=b"bench")
            with seal_client:
                seal_client.seal()
            seal_at = time.time()
            deadline = time.time() + 300.0
            while time.time() < deadline:
                health = service.health()
                if health["status"] in ("finished", "failed"):
                    break
                time.sleep(0.02)
            assert health["status"] == "finished", health["error"]
        published = service.windows()
        # Windows whose populations only the seal finalized (the grid
        # tail) start their latency clock at the seal.
        latencies = [
            max(published_at - window_ready_at.get(i, seal_at), 0.0)
            for i, published_at in enumerate(service.published_at)
        ]
        return sum(counters), ingest_seconds, published, latencies, health

    shipped, ingest_seconds, published, latencies, health = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    throughput = shipped / max(ingest_seconds, 1e-9)
    ok = [w for w in published if w.ok]
    rows = [
        ("records shipped (2 clients)", f"{shipped}"),
        ("ingest wall time", f"{ingest_seconds:.2f} s"),
        ("ingest throughput", f"{throughput:.0f} records/s"),
        ("windows published / grid", f"{len(published)} / {health['windows_published']}"),
        ("windows with estimates", f"{len(ok)}"),
        ("publish latency mean", f"{np.mean(latencies):.3f} s"),
        ("publish latency max", f"{np.max(latencies):.3f} s"),
    ]
    print(f"\n=== Live serving: ingest -> estimate -> query "
          f"({trace.skeleton.n_events} events, {n_windows} windows, "
          f"{len(os.sched_getaffinity(0))} cpu) ===")
    print(render_table(["metric", "value"], rows))
    result = {
        "benchmark": "live_serving",
        "n_events": int(trace.skeleton.n_events),
        "n_requests": int(n_requests),
        "n_windows": len(published),
        "records_shipped": int(shipped),
        "ingest_seconds": ingest_seconds,
        "ingest_records_per_second": throughput,
        "publish_latency_mean_seconds": float(np.mean(latencies)),
        "publish_latency_max_seconds": float(np.max(latencies)),
        "windows_ok": len(ok),
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    print(f"wrote {RESULT_PATH}")
    # Acceptance: every shipped record made it in (the racing watermarks
    # really were harmless), the service drained the whole grid, estimated
    # something, and ingestion was not pathologically serialized.
    assert health["n_stragglers"] == 0, (
        f"{health['n_stragglers']} records dropped as stragglers — the "
        "lateness bound no longer covers the client race"
    )
    assert health["n_admitted"] == shipped
    # Float rounding of horizon/n_windows can move the grid's window
    # count by one in either direction; off-by-more means lost windows.
    assert abs(len(published) - n_windows) <= 1
    assert ok, "no window produced an estimate"
    assert throughput > MIN_RECORDS_PER_SECOND, (
        f"ingest throughput {throughput:.0f} records/s below the "
        f"{MIN_RECORDS_PER_SECOND:.0f}/s floor"
    )
