"""Figure 3: exactness of the closed-form conditional sampler.

The paper's Figure 3 gives the inverse-CDF sampler for the three-piece
conditional (Eq. 3-4).  We validate our generalized implementation two
ways on conditionals harvested from a real trace:

1. **PIT/KS check** — draws pushed through the exact CDF must be uniform;
2. **Z-decomposition check** — the piece probabilities Z1/Z, Z2/Z, Z3/Z
   must sum to one and match numerically integrated masses.

The benchmark times the draw itself (the sampler's innermost hot path).
"""

import numpy as np
from scipy import integrate

from repro.experiments import render_table
from repro.inference.conditional import arrival_conditional
from repro.network import build_three_tier_network
from repro.simulate import simulate_network


def harvest_conditionals(n=60):
    net = build_three_tier_network(10.0, (1, 2, 4))
    sim = simulate_network(net, 150, random_state=33)
    ev = sim.events
    rates = sim.true_rates()
    dists = []
    for e in range(ev.n_events):
        if ev.pi[e] < 0:
            continue
        dist = arrival_conditional(ev, e, rates)
        if dist is not None:
            dists.append(dist)
        if len(dists) == n:
            break
    return dists


def test_fig3_sampler_exactness(benchmark):
    dists = harvest_conditionals()
    rng = np.random.default_rng(7)

    def draw_many():
        return [d.sample(rng) for d in dists for _ in range(50)]

    draws = benchmark(draw_many)
    assert len(draws) == len(dists) * 50

    # PIT: pooled probability-integral transform across conditionals.
    u = []
    rng2 = np.random.default_rng(8)
    for d in dists:
        for _ in range(200):
            u.append(d.cdf(d.sample(rng2)))
    u = np.array(u)
    grid = np.linspace(0.05, 0.95, 19)
    emp = np.array([np.mean(u <= g) for g in grid])
    ks = float(np.max(np.abs(emp - grid)))
    assert ks < 0.02, f"PIT deviation {ks:.4f}"

    # Z-decomposition vs numerical integration.
    worst = 0.0
    for d in dists[:20]:
        probs = d.piece_probabilities()
        assert abs(probs.sum() - 1.0) < 1e-9
        for i in range(d.n_pieces):
            lo, hi = d.knots[i], d.knots[i + 1]
            numeric, _ = integrate.quad(
                lambda x: np.exp(d.log_pdf(x)), lo, min(hi, lo + 1e3), limit=200
            )
            worst = max(worst, abs(numeric - probs[i]))
    assert worst < 1e-6

    print("\n=== Figure 3: closed-form sampler validation ===")
    print(render_table(
        ["check", "value", "threshold"],
        [
            ("PIT/KS uniformity of draws", f"{ks:.4f}", "0.02"),
            ("max |Z_i/Z - numeric mass|", f"{worst:.2e}", "1e-6"),
            ("conditionals validated", str(len(dists)), "-"),
        ],
        title="paper: Eq. 3-4 sample exactly from the piecewise conditional",
    ))
    pieces = np.array([d.n_pieces for d in dists])
    print(f"piece counts: 1-piece {np.mean(pieces == 1):.0%}, "
          f"2-piece {np.mean(pieces == 2):.0%}, 3-piece {np.mean(pieces == 3):.0%}")
