"""Tests for bottleneck localization and reporting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.inference import estimate_posterior
from repro.localization import (
    diagnose,
    rank_bottlenecks,
    render_report,
    slow_request_profile,
)
from repro.observation import TaskSampling


@pytest.fixture(scope="module")
def three_tier_summary(three_tier_sim):
    trace = TaskSampling(fraction=0.2).observe(three_tier_sim.events, random_state=0)
    return estimate_posterior(
        trace, rates=three_tier_sim.true_rates(),
        n_samples=15, burn_in=10, random_state=1,
    )


class TestDiagnose:
    def test_overloaded_queue_flagged(self, three_tier_sim, three_tier_summary):
        names = three_tier_sim.network.queue_names
        diagnoses = diagnose(three_tier_summary, names)
        by_name = {d.name: d for d in diagnoses}
        # The single-server tier (rho = 2) must be waiting-dominated.
        assert by_name["web"].verdict == "overloaded"
        assert by_name["web"].waiting > by_name["web"].service

    def test_light_queue_not_overloaded(self, three_tier_sim, three_tier_summary):
        names = three_tier_sim.network.queue_names
        by_name = {d.name: d for d in diagnose(three_tier_summary, names)}
        for j in range(4):
            assert by_name[f"db-{j}"].verdict in ("intrinsic", "mixed")

    def test_name_length_validation(self, three_tier_summary):
        with pytest.raises(ConfigurationError):
            diagnose(three_tier_summary, ("too", "few"))

    def test_default_names(self, three_tier_summary):
        diagnoses = diagnose(three_tier_summary)
        assert diagnoses[0].name == "queue-1"


class TestRanking:
    def test_bottleneck_ranked_first(self, three_tier_sim, three_tier_summary):
        names = three_tier_sim.network.queue_names
        ranked = rank_bottlenecks(three_tier_summary, names)
        assert ranked[0].name == "web"
        sojourns = [d.sojourn for d in ranked if np.isfinite(d.sojourn)]
        assert sojourns == sorted(sojourns, reverse=True)


class TestReport:
    def test_report_contains_all_queues(self, three_tier_sim, three_tier_summary):
        names = three_tier_sim.network.queue_names
        ranked = rank_bottlenecks(three_tier_summary, names)
        text = render_report(ranked)
        for name in names[1:]:
            assert name in text
        assert "verdict" in text

    def test_top_limits_rows(self, three_tier_summary):
        ranked = rank_bottlenecks(three_tier_summary)
        text = render_report(ranked, top=2)
        assert len(text.splitlines()) == 4  # header + rule + 2 rows


class TestSlowRequests:
    def test_profile_structure(self, three_tier_sim):
        profile = slow_request_profile(three_tier_sim.events, percentile=90.0)
        n_queues = three_tier_sim.events.n_queues
        assert profile["slow_waiting"].shape == (n_queues,)
        assert profile["slow_tasks"].size >= 1

    def test_slow_tasks_wait_longer(self, three_tier_sim):
        """Slow requests must show more waiting at the bottleneck than the
        average request — the paper's Section 1 diagnosis scenario."""
        profile = slow_request_profile(three_tier_sim.events, percentile=80.0)
        assert profile["slow_waiting"][1] > profile["all_waiting"][1]

    def test_percentile_validation(self, three_tier_sim):
        with pytest.raises(ConfigurationError):
            slow_request_profile(three_tier_sim.events, percentile=0.0)
