"""Property-based tests on the ServiceDistribution contract (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    TruncatedExponential,
    UniformService,
)

rates = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)


def _all_distributions(rate: float):
    return [
        Exponential(rate=rate),
        Erlang(k=2, rate=rate),
        Gamma(shape=1.7, rate=rate),
        HyperExponential(probs=(0.6, 0.4), rates=(rate, rate * 3.0)),
        LogNormal(mu_log=float(-np.log(rate)), sigma_log=0.6),
        Deterministic(value=1.0 / rate),
        UniformService(low=0.0, high=2.0 / rate),
        TruncatedExponential(rate=rate, width=5.0 / rate),
    ]


@given(rate=rates, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_samples_are_nonnegative_and_finite(rate, seed):
    rng = np.random.default_rng(seed)
    for dist in _all_distributions(rate):
        x = dist.sample(64, rng)
        assert x.shape == (64,)
        assert np.all(np.isfinite(x))
        assert np.all(x >= 0.0)


@given(rate=rates)
@settings(max_examples=25, deadline=None)
def test_moments_are_consistent(rate):
    for dist in _all_distributions(rate):
        assert dist.mean >= 0.0
        assert dist.variance >= 0.0
        assert np.isfinite(dist.mean)
        assert np.isfinite(dist.variance)
        if dist.mean > 0.0:
            assert dist.scv >= 0.0


@given(rate=rates, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_sample_mean_tracks_distribution_mean(rate, seed):
    rng = np.random.default_rng(seed)
    for dist in _all_distributions(rate):
        x = dist.sample(4000, rng)
        scale = max(dist.mean, 1e-12)
        tolerance = 6.0 * np.sqrt(dist.variance / x.size) + 1e-9 * scale
        assert abs(x.mean() - dist.mean) <= tolerance


@given(rate=rates, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_exponential_fit_roundtrip(rate, seed):
    rng = np.random.default_rng(seed)
    samples = Exponential(rate=rate).sample(3000, rng)
    fit = Exponential.fit(samples)
    assert 0.7 * rate < fit.rate < 1.4 * rate


@given(
    rate=rates,
    width_factor=st.floats(min_value=0.01, max_value=100.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_truncated_exponential_never_escapes(rate, width_factor, seed):
    width = width_factor / rate
    rng = np.random.default_rng(seed)
    dist = TruncatedExponential(rate=rate, width=width)
    x = dist.sample(256, rng)
    assert np.all(x > 0.0)
    assert np.all(x < width)
    assert 0.0 < dist.mean < width
