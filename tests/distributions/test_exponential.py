"""Tests for the exponential distribution."""

import numpy as np
import pytest

from repro.distributions import Exponential


class TestConstruction:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Exponential(rate=0.0)
        with pytest.raises(ValueError):
            Exponential(rate=-1.0)

    def test_rejects_infinite_rate(self):
        with pytest.raises(ValueError):
            Exponential(rate=float("inf"))

    def test_from_mean(self):
        dist = Exponential.from_mean(0.25)
        assert dist.rate == pytest.approx(4.0)

    def test_from_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Exponential.from_mean(0.0)

    def test_immutable(self):
        dist = Exponential(rate=2.0)
        with pytest.raises(AttributeError):
            dist.rate = 3.0


class TestMoments:
    def test_mean_and_variance(self):
        dist = Exponential(rate=4.0)
        assert dist.mean == pytest.approx(0.25)
        assert dist.variance == pytest.approx(0.0625)
        assert dist.scv == pytest.approx(1.0)

    def test_sample_mean_converges(self, rng):
        dist = Exponential(rate=5.0)
        samples = dist.sample(20000, rng)
        assert samples.mean() == pytest.approx(0.2, rel=0.05)
        assert samples.min() >= 0.0


class TestDensity:
    def test_log_pdf_matches_formula(self):
        dist = Exponential(rate=3.0)
        x = np.array([0.0, 0.5, 2.0])
        expected = np.log(3.0) - 3.0 * x
        np.testing.assert_allclose(dist.log_pdf(x), expected)

    def test_log_pdf_negative_support(self):
        dist = Exponential(rate=3.0)
        assert dist.log_pdf(np.array([-0.1]))[0] == -np.inf

    def test_pdf_integrates_to_one(self):
        dist = Exponential(rate=2.0)
        x = np.linspace(0, 20, 200001)
        integral = np.trapezoid(dist.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_cdf_quantile_roundtrip(self):
        dist = Exponential(rate=7.0)
        p = np.array([0.01, 0.5, 0.99])
        np.testing.assert_allclose(dist.cdf(dist.quantile(p)), p, atol=1e-12)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Exponential(rate=1.0).quantile(np.array([1.5]))


class TestFit:
    def test_mle_is_inverse_mean(self, rng):
        samples = Exponential(rate=3.0).sample(5000, rng)
        fit = Exponential.fit(samples)
        assert fit.rate == pytest.approx(1.0 / samples.mean())

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            Exponential.fit([])

    def test_fit_rejects_negative(self):
        with pytest.raises(ValueError):
            Exponential.fit([1.0, -0.5])

    def test_fit_rejects_all_zero(self):
        with pytest.raises(ValueError):
            Exponential.fit([0.0, 0.0])

    def test_log_likelihood_maximized_at_mle(self, rng):
        samples = Exponential(rate=2.0).sample(400, rng)
        fit = Exponential.fit(samples)
        ll_fit = fit.log_likelihood(samples)
        for rate in (fit.rate * 0.8, fit.rate * 1.2):
            assert Exponential(rate=rate).log_likelihood(samples) < ll_fit
