"""Tests for truncated-exponential sampling (paper Eq. 4's TrExp)."""

import numpy as np
import pytest

from repro.distributions import TruncatedExponential, sample_truncated_exponential


class TestSampleFunction:
    def test_stays_inside_interval(self, rng):
        x = sample_truncated_exponential(2.0, 0.5, rng, size=2000)
        assert np.all(x > 0.0)
        assert np.all(x < 0.5)

    def test_scalar_return(self, rng):
        x = sample_truncated_exponential(1.0, 1.0, rng)
        assert isinstance(x, float)

    def test_tiny_rate_is_nearly_uniform(self, rng):
        x = sample_truncated_exponential(1e-15, 4.0, rng, size=20000)
        # Uniform on (0, 4): mean 2, ks-ish check on quartiles.
        assert x.mean() == pytest.approx(2.0, rel=0.05)
        assert np.percentile(x, 25) == pytest.approx(1.0, rel=0.1)

    def test_huge_rate_hugs_zero(self, rng):
        x = sample_truncated_exponential(1e6, 1.0, rng, size=1000)
        assert x.max() < 1e-4

    def test_matches_analytic_mean(self, rng):
        dist = TruncatedExponential(rate=3.0, width=0.7)
        x = dist.sample(40000, rng)
        assert x.mean() == pytest.approx(dist.mean, rel=0.02)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            sample_truncated_exponential(-1.0, 1.0)
        with pytest.raises(ValueError):
            sample_truncated_exponential(1.0, 0.0)
        with pytest.raises(ValueError):
            sample_truncated_exponential(1.0, float("inf"))


class TestDistributionObject:
    def test_mean_nearly_uniform_limit(self):
        dist = TruncatedExponential(rate=1e-10, width=2.0)
        assert dist.mean == pytest.approx(1.0, rel=1e-6)

    def test_mean_untruncated_limit(self):
        # With width >> 1/rate the truncation is irrelevant.
        dist = TruncatedExponential(rate=5.0, width=100.0)
        assert dist.mean == pytest.approx(0.2, rel=1e-6)

    def test_variance_uniform_limit(self):
        dist = TruncatedExponential(rate=1e-9, width=3.0)
        assert dist.variance == pytest.approx(9.0 / 12.0, rel=1e-4)

    def test_log_pdf_normalized(self):
        dist = TruncatedExponential(rate=2.0, width=1.5)
        x = np.linspace(0, 1.5, 100001)
        integral = np.trapezoid(np.exp(dist.log_pdf(x)), x)
        assert integral == pytest.approx(1.0, abs=1e-5)

    def test_log_pdf_outside_support(self):
        dist = TruncatedExponential(rate=2.0, width=1.5)
        assert dist.log_pdf(np.array([-0.1]))[0] == -np.inf
        assert dist.log_pdf(np.array([1.6]))[0] == -np.inf

    def test_fit_recovers_rate(self, rng):
        true = TruncatedExponential(rate=4.0, width=1.0)
        samples = true.sample(20000, rng)
        fit = TruncatedExponential.fit(samples)
        assert fit.rate == pytest.approx(4.0, rel=0.15)

    def test_variance_positive(self):
        dist = TruncatedExponential(rate=3.0, width=0.4)
        assert 0.0 < dist.variance < dist.width**2
