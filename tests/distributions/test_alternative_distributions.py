"""Tests for the non-exponential service distributions."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Gamma,
    HyperExponential,
    LogNormal,
    UniformService,
)


class TestErlang:
    def test_moments(self):
        dist = Erlang(k=3, rate=6.0)
        assert dist.mean == pytest.approx(0.5)
        assert dist.variance == pytest.approx(3.0 / 36.0)
        assert dist.scv == pytest.approx(1.0 / 3.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Erlang(k=0, rate=1.0)
        with pytest.raises(ValueError):
            Erlang(k=2, rate=-1.0)

    def test_sampling_matches_moments(self, rng):
        dist = Erlang(k=4, rate=2.0)
        x = dist.sample(30000, rng)
        assert x.mean() == pytest.approx(2.0, rel=0.03)
        assert x.var() == pytest.approx(1.0, rel=0.1)

    def test_log_pdf_integrates_to_one(self):
        dist = Erlang(k=2, rate=3.0)
        x = np.linspace(0, 15, 100001)
        assert np.trapezoid(dist.pdf(x), x) == pytest.approx(1.0, abs=1e-5)

    def test_k1_equals_exponential_density(self):
        dist = Erlang(k=1, rate=2.0)
        x = np.array([0.0, 0.3, 1.0])
        np.testing.assert_allclose(dist.log_pdf(x), np.log(2.0) - 2.0 * x)

    def test_fit_recovers_parameters(self, rng):
        true = Erlang(k=3, rate=9.0)
        fit = Erlang.fit(true.sample(20000, rng))
        assert fit.k == 3
        assert fit.rate == pytest.approx(9.0, rel=0.1)


class TestHyperExponential:
    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            HyperExponential(probs=(0.5, 0.4), rates=(1.0, 2.0))  # sum != 1
        with pytest.raises(ValueError):
            HyperExponential(probs=(0.5, 0.5), rates=(1.0, -2.0))
        with pytest.raises(ValueError):
            HyperExponential(probs=(0.5, 0.5), rates=(1.0,))

    def test_moments(self):
        dist = HyperExponential(probs=(0.9, 0.1), rates=(10.0, 0.5))
        expected_mean = 0.9 / 10.0 + 0.1 / 0.5
        assert dist.mean == pytest.approx(expected_mean)
        assert dist.scv > 1.0  # bursty by construction

    def test_sampling_matches_mean(self, rng):
        dist = HyperExponential(probs=(0.7, 0.3), rates=(5.0, 1.0))
        x = dist.sample(50000, rng)
        assert x.mean() == pytest.approx(dist.mean, rel=0.05)

    def test_log_pdf_integrates_to_one(self):
        dist = HyperExponential(probs=(0.6, 0.4), rates=(4.0, 1.0))
        x = np.linspace(0, 40, 200001)
        assert np.trapezoid(dist.pdf(x), x) == pytest.approx(1.0, abs=1e-4)

    def test_em_fit_reasonable(self, rng):
        true = HyperExponential(probs=(0.8, 0.2), rates=(10.0, 1.0))
        samples = true.sample(8000, rng)
        fit = HyperExponential.fit(samples, n_branches=2)
        assert fit.mean == pytest.approx(true.mean, rel=0.15)


class TestGamma:
    def test_moments(self):
        dist = Gamma(shape=2.5, rate=5.0)
        assert dist.mean == pytest.approx(0.5)
        assert dist.scv == pytest.approx(0.4)

    def test_fit_recovers_parameters(self, rng):
        true = Gamma(shape=3.0, rate=6.0)
        fit = Gamma.fit(true.sample(30000, rng))
        assert fit.shape == pytest.approx(3.0, rel=0.1)
        assert fit.rate == pytest.approx(6.0, rel=0.1)

    def test_log_pdf_integrates_to_one(self):
        dist = Gamma(shape=1.5, rate=2.0)
        x = np.linspace(1e-9, 25, 400001)
        assert np.trapezoid(dist.pdf(x), x) == pytest.approx(1.0, abs=1e-3)

    def test_log_pdf_matches_scipy(self):
        from scipy import stats

        dist = Gamma(shape=0.7, rate=2.0)
        x = np.array([0.05, 0.3, 1.2, 4.0])
        expected = stats.gamma.logpdf(x, a=0.7, scale=0.5)
        np.testing.assert_allclose(dist.log_pdf(x), expected, rtol=1e-10)


class TestLogNormal:
    def test_moments(self):
        dist = LogNormal(mu_log=0.0, sigma_log=0.5)
        assert dist.mean == pytest.approx(np.exp(0.125))

    def test_from_mean_scv(self):
        dist = LogNormal.from_mean_scv(mean=0.3, scv=2.0)
        assert dist.mean == pytest.approx(0.3, rel=1e-9)
        assert dist.scv == pytest.approx(2.0, rel=1e-9)

    def test_fit_exact_mle(self, rng):
        true = LogNormal(mu_log=-1.0, sigma_log=0.4)
        samples = true.sample(20000, rng)
        fit = LogNormal.fit(samples)
        assert fit.mu_log == pytest.approx(-1.0, abs=0.02)
        assert fit.sigma_log == pytest.approx(0.4, abs=0.02)

    def test_fit_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            LogNormal.fit([0.0, 1.0])


class TestDeterministic:
    def test_sampling_is_constant(self, rng):
        dist = Deterministic(value=0.2)
        assert np.all(dist.sample(10, rng) == 0.2)
        assert dist.variance == 0.0
        assert dist.scv == 0.0

    def test_log_pdf_point_mass(self):
        dist = Deterministic(value=1.5)
        assert dist.log_pdf(np.array([1.5]))[0] == 0.0
        assert dist.log_pdf(np.array([1.4]))[0] == -np.inf

    def test_fit(self):
        assert Deterministic.fit([2.0, 2.0, 2.0]).value == 2.0


class TestUniformService:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            UniformService(low=1.0, high=1.0)
        with pytest.raises(ValueError):
            UniformService(low=-0.1, high=1.0)

    def test_moments(self):
        dist = UniformService(low=1.0, high=3.0)
        assert dist.mean == pytest.approx(2.0)
        assert dist.variance == pytest.approx(4.0 / 12.0)

    def test_fit_spans_sample(self, rng):
        samples = UniformService(low=0.5, high=2.0).sample(5000, rng)
        fit = UniformService.fit(samples)
        assert fit.low == pytest.approx(0.5, abs=0.01)
        assert fit.high == pytest.approx(2.0, abs=0.01)


class TestEmpirical:
    def test_resamples_only_observations(self, rng):
        dist = Empirical(observations=(0.1, 0.2, 0.3))
        x = dist.sample(1000, rng)
        assert set(np.round(x, 10)) <= {0.1, 0.2, 0.3}

    def test_moments_match_sample(self):
        obs = (1.0, 2.0, 3.0, 4.0)
        dist = Empirical(observations=obs)
        assert dist.mean == pytest.approx(2.5)
        assert dist.variance == pytest.approx(np.var(obs))

    def test_log_pdf_is_pmf(self):
        dist = Empirical(observations=(1.0, 1.0, 2.0))
        assert dist.log_pdf(np.array([1.0]))[0] == pytest.approx(np.log(2.0 / 3.0))
        assert dist.log_pdf(np.array([3.0]))[0] == -np.inf

    def test_quantile(self):
        dist = Empirical(observations=tuple(float(i) for i in range(101)))
        assert dist.quantile(0.5) == pytest.approx(50.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Empirical(observations=(-1.0, 2.0))
