"""Tests for posterior predictive checks."""

import numpy as np
import pytest

from repro.distributions import LogNormal
from repro.errors import InferenceError
from repro.inference import run_stem
from repro.model_checking import (
    observed_statistics,
    posterior_predictive_check,
)
from repro.network import QueueingNetwork, build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import LinearRampArrivals, simulate_network


class TestObservedStatistics:
    def test_keys_and_sanity(self, tandem_sim, tandem_trace):
        stats = observed_statistics(tandem_trace)
        assert stats["response_p50"] <= stats["response_p90"] <= stats["response_p99"]
        assert stats["interarrival_mean"] > 0.0
        # Poisson arrivals: SCV near 1 (subsampled gaps are exponential-ish).
        assert 0.3 < stats["interarrival_scv"] < 3.0

    def test_requires_observed_tasks(self, tandem_sim):
        trace = TaskSampling(fraction=0.01, min_tasks=1).observe(
            tandem_sim.events, random_state=0
        )
        with pytest.raises(InferenceError):
            observed_statistics(trace)


class TestPPC:
    @pytest.fixture(scope="class")
    def well_specified(self):
        net = build_tandem_network(4.0, [6.0, 9.0])
        sim = simulate_network(net, 300, random_state=41)
        trace = TaskSampling(fraction=0.25).observe(sim.events, random_state=4)
        stem = run_stem(trace, n_iterations=50, random_state=5, init_method="heuristic")
        fitted = net.with_rates(stem.rates)
        # 30 replicates: with 15 the min/max band is so coarse that a
        # within-noise change in the StEM estimate flips p-values to 0.
        return posterior_predictive_check(
            trace, fitted, observe_fraction=0.25, n_replicates=30, random_state=6
        )

    def test_well_specified_model_passes(self, well_specified):
        # A correctly specified model should reproduce its own statistics.
        flagged = well_specified.flagged(alpha=0.02)
        assert len(flagged) <= 1, flagged

    def test_p_values_in_range(self, well_specified):
        for p in well_specified.p_values.values():
            if np.isfinite(p):
                assert 0.0 <= p <= 1.0

    def test_replicate_arrays_populated(self, well_specified):
        for vals in well_specified.replicates.values():
            assert vals.size >= 10

    def test_misspecified_model_flagged(self):
        """Heavy-tailed truth vs fitted M/M/1: the p99 should be flagged."""
        base = build_tandem_network(3.0, [5.0, 5.0])
        services = dict(base.services)
        services["q1"] = LogNormal.from_mean_scv(mean=0.2, scv=12.0)
        services["q2"] = LogNormal.from_mean_scv(mean=0.2, scv=12.0)
        truth = QueueingNetwork(
            queue_names=base.queue_names, services=services, fsm=base.fsm
        )
        sim = simulate_network(truth, 400, random_state=43)
        trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=7)
        stem = run_stem(trace, n_iterations=50, random_state=8, init_method="heuristic")
        fitted = base.with_rates(stem.rates)
        ppc = posterior_predictive_check(
            trace, fitted, observe_fraction=0.3, n_replicates=15, random_state=9
        )
        assert not ppc.ok

    def test_ramp_arrivals_flagged(self):
        """Non-homogeneous arrivals (the web-app mismatch) show up in SCV."""
        net = build_tandem_network(2.0, [8.0, 8.0])
        ramp = LinearRampArrivals(duration=150.0, rate0=0.0, slope=1.0)
        sim = simulate_network(net, 300, arrival_process=ramp, random_state=44)
        trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=10)
        stem = run_stem(trace, n_iterations=50, random_state=11, init_method="heuristic")
        fitted = net.with_rates(stem.rates)
        ppc = posterior_predictive_check(
            trace, fitted, observe_fraction=0.3, n_replicates=15, random_state=12
        )
        # The ramp inflates observed interarrival SCV beyond Poisson replicates.
        assert "interarrival_scv" in ppc.flagged(alpha=0.1) or not ppc.ok
