"""Property-based invariant tests for the Gibbs + path samplers.

Whatever the seed, the observation pattern, and the (positive) rate
vector, a sweep must preserve every deterministic constraint, keep the
observed values pinned, and keep the joint density finite.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference import GibbsSampler, heuristic_initialize
from repro.network import build_tandem_network, build_three_tier_network
from repro.observation import EventSampling, TaskSampling
from repro.simulate import simulate_network


@given(
    sim_seed=st.integers(min_value=0, max_value=2**31 - 1),
    obs_seed=st.integers(min_value=0, max_value=2**31 - 1),
    fraction=st.floats(min_value=0.05, max_value=0.9),
    rate_scale=st.floats(min_value=0.2, max_value=5.0),
)
@settings(max_examples=15, deadline=None)
def test_sweeps_preserve_feasibility_tandem(sim_seed, obs_seed, fraction, rate_scale):
    net = build_tandem_network(3.0, [5.0, 7.0])
    sim = simulate_network(net, 40, random_state=sim_seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=obs_seed)
    rates = sim.true_rates() * rate_scale  # deliberately wrong rates
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=obs_seed)
    obs = np.flatnonzero(trace.arrival_observed)
    pinned = state.arrival[obs].copy()
    sampler.run(3)
    state.validate()
    np.testing.assert_array_equal(state.arrival[obs], pinned)
    assert np.isfinite(state.log_joint(rates))


@given(
    sim_seed=st.integers(min_value=0, max_value=2**31 - 1),
    obs_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_sweeps_preserve_feasibility_event_sampling(sim_seed, obs_seed):
    """The scattered-observation regime (partially observed tasks)."""
    net = build_three_tier_network(8.0, (2, 1, 2))
    sim = simulate_network(net, 30, random_state=sim_seed)
    trace = EventSampling(fraction=0.3, observe_final_departures=True).observe(
        sim.events, random_state=obs_seed
    )
    rates = sim.true_rates()
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=obs_seed)
    sampler.run(3)
    state.validate()


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_path_moves_preserve_feasibility(seed):
    from repro.inference import PathResampler, tier_candidates_from_fsm

    net = build_three_tier_network(5.0, (1, 3, 1))
    sim = simulate_network(net, 40, random_state=seed)
    trace = TaskSampling(fraction=0.25).observe(sim.events, random_state=seed)
    rates = sim.true_rates()
    state = heuristic_initialize(trace, rates)
    ev = state
    tier = {net.queue_index(f"app-{j}") for j in range(3)}
    unknown = np.array([
        e for e in range(ev.n_events)
        if int(ev.queue[e]) in tier and not trace.arrival_observed[e]
    ])
    if unknown.size == 0:
        return
    resampler = PathResampler(
        state, tier_candidates_from_fsm(state, net.fsm, unknown), rates,
        random_state=seed,
    )
    gibbs = GibbsSampler(trace, state, rates, random_state=seed + 1)
    for _ in range(2):
        gibbs.sweep()
        resampler.sweep()
        state.validate()
