"""End-to-end integration tests: the paper's pipeline at reduced scale."""

import numpy as np
import pytest

from repro.baselines import complete_data_mle
from repro.inference import estimate_posterior, run_stem
from repro.localization import rank_bottlenecks
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


class TestSyntheticPipeline:
    """Simulate -> censor -> StEM -> posterior -> localize, checked end to end."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        network = build_three_tier_network(10.0, (1, 2, 4))
        sim = simulate_network(network, 600, random_state=2024)
        trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=11)
        stem = run_stem(
            trace, n_iterations=80, random_state=12, init_method="heuristic"
        )
        posterior = estimate_posterior(
            trace, rates=stem.rates, n_samples=20, burn_in=10,
            state=stem.sampler.state, random_state=13,
        )
        return sim, trace, stem, posterior

    def test_service_times_recovered(self, pipeline):
        sim, _, stem, _ = pipeline
        true_service = sim.events.mean_service_by_queue()
        est_service = stem.mean_service_times()
        errors = np.abs(est_service[1:] - true_service[1:])
        # Paper: median abs error 0.033 at 5%; we are at 10% but smaller n.
        assert np.median(errors) < 0.08

    def test_arrival_rate_recovered(self, pipeline):
        _, _, stem, _ = pipeline
        assert stem.arrival_rate == pytest.approx(10.0, rel=0.15)

    def test_waiting_identifies_overloaded_tier(self, pipeline):
        sim, _, _, posterior = pipeline
        est_waiting = posterior.waiting_mean
        # Queue 1 (rho = 2) has by far the largest waiting.
        assert np.nanargmax(est_waiting[1:]) + 1 == 1

    def test_waiting_magnitude_matches_truth(self, pipeline):
        sim, _, _, posterior = pipeline
        true_waiting = sim.events.mean_waiting_by_queue()
        assert posterior.waiting_mean[1] == pytest.approx(true_waiting[1], rel=0.3)

    def test_localization_ranks_bottleneck_first(self, pipeline):
        sim, _, _, posterior = pipeline
        ranked = rank_bottlenecks(posterior, sim.network.queue_names)
        assert ranked[0].name == "web"
        assert ranked[0].verdict == "overloaded"

    def test_stem_not_far_from_complete_data_mle(self, pipeline):
        sim, _, stem, _ = pipeline
        oracle = complete_data_mle(sim.events)
        # Service-time scale: 10% data vs 100% data within ~2.5x error of
        # each other against truth is expected; just require same decade.
        ratio = stem.rates[1:] / oracle[1:]
        assert np.all(ratio > 0.4)
        assert np.all(ratio < 2.5)


class TestStemAcrossLoads:
    """Estimation quality holds in light, critical, and overloaded regimes."""

    @pytest.mark.parametrize("arrival_rate", [2.0, 4.5, 8.0])
    def test_single_queue_regimes(self, arrival_rate):
        from repro.network import build_tandem_network

        net = build_tandem_network(arrival_rate, [5.0])
        sim = simulate_network(net, 400, random_state=int(arrival_rate * 10))
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=1)
        stem = run_stem(trace, n_iterations=60, random_state=2, init_method="heuristic")
        true_service = sim.events.mean_service_by_queue()[1]
        assert stem.mean_service_times()[1] == pytest.approx(true_service, rel=0.35)


class TestEventSamplingPipeline:
    """The general O ⊂ E regime (scattered observations) also works."""

    def test_partial_task_observation(self):
        from repro.network import build_tandem_network
        from repro.observation import EventSampling

        net = build_tandem_network(4.0, [6.0, 8.0])
        sim = simulate_network(net, 400, random_state=31)
        trace = EventSampling(fraction=0.3, observe_final_departures=True).observe(
            sim.events, random_state=3
        )
        stem = run_stem(trace, n_iterations=60, random_state=4, init_method="heuristic")
        np.testing.assert_allclose(stem.rates, sim.true_rates(), rtol=0.5)
        assert stem.arrival_rate == pytest.approx(4.0, rel=0.2)
