"""Statistical correctness of the Gibbs chain.

Two complementary checks:

1. **Stationarity of the prior**: starting from a draw of the *full* prior
   (a fresh simulation) with nothing observed except what TaskSampling
   pins, sweeping the chain must preserve distributional summaries — a
   Gibbs kernel with the correct conditionals leaves its target invariant.

2. **Posterior coverage**: across many data sets, posterior means at true
   parameters must straddle ground truth without systematic bias.
"""

import numpy as np
import pytest

from repro.inference import GibbsSampler
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.rng import spawn
from repro.simulate import simulate_network


class TestPriorInvariance:
    def test_sweeps_preserve_service_law(self):
        """Start at an exact posterior draw (the ground truth itself) and
        check the chain does not drift away in distribution."""
        net = build_tandem_network(4.0, [6.0, 8.0])
        before_means = []
        after_means = []
        for seed in range(12):
            sim = simulate_network(net, 80, random_state=1000 + seed)
            trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=seed)
            # Ground truth IS a draw from p(E | O): use it as the state.
            state = sim.events.copy()
            sampler = GibbsSampler(
                trace, state, sim.true_rates(), random_state=seed
            )
            before_means.append(state.mean_service_by_queue()[1:])
            sampler.run(15)
            state.validate()
            after_means.append(state.mean_service_by_queue()[1:])
        before = np.array(before_means).mean(axis=0)
        after = np.array(after_means).mean(axis=0)
        # Invariance: ensemble averages unchanged up to Monte Carlo noise.
        np.testing.assert_allclose(after, before, rtol=0.2)

    def test_log_joint_stays_in_typical_set(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        sim = simulate_network(net, 150, random_state=5)
        trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=5)
        state = sim.events.copy()
        rates = sim.true_rates()
        sampler = GibbsSampler(trace, state, rates, random_state=6)
        reference = sim.events.log_joint(rates)
        log_joints = []
        for _ in range(30):
            sampler.sweep()
            log_joints.append(state.log_joint(rates))
        # The chain's log-density must stay in the same range as the true
        # draw, not collapse to a mode or diverge.
        assert np.isfinite(log_joints).all()
        spread = abs(reference) * 0.15 + 50.0
        assert abs(np.mean(log_joints) - reference) < spread


class TestPosteriorCoverage:
    def test_no_systematic_bias_across_datasets(self):
        """Average posterior-mean error over many datasets ~ 0."""
        net = build_tandem_network(4.0, [6.0, 8.0])
        streams = spawn(99, 10)
        biases = []
        for i, stream in enumerate(streams):
            sim = simulate_network(net, 100, random_state=stream)
            trace = TaskSampling(fraction=0.15).observe(sim.events, random_state=i)
            from repro.inference import heuristic_initialize

            rates = sim.true_rates()
            state = heuristic_initialize(trace, rates)
            sampler = GibbsSampler(trace, state, rates, random_state=i)
            samples = sampler.collect(n_samples=10, burn_in=10)
            est = samples.posterior_mean_service()[1:]
            true = sim.events.mean_service_by_queue()[1:]
            biases.append(est - true)
        mean_bias = np.array(biases).mean(axis=0)
        # Mean service ~ 1/6 and 1/8; bias must be an order below.
        assert np.all(np.abs(mean_bias) < 0.04)
