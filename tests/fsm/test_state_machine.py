"""Tests for the probabilistic FSM."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fsm import ProbabilisticFSM, TaskPath, chain_fsm, tiered_fsm


def simple_fsm(n_queues=3):
    """0 -> 1 (emit queue 1 or 2) -> 2 (final)."""
    transition = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 1.0]])
    emission = np.zeros((3, n_queues))
    emission[1, 1] = 0.5
    emission[1, 2] = 0.5
    return ProbabilisticFSM(transition=transition, emission=emission,
                            initial_state=0, final_state=2)


class TestValidation:
    def test_rejects_nonsquare_transition(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticFSM(
                transition=np.ones((2, 3)) / 3.0, emission=np.zeros((2, 2))
            )

    def test_rejects_non_stochastic_rows(self):
        transition = np.array([[0.0, 0.5, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 1.0]])
        emission = np.zeros((3, 2))
        emission[1, 1] = 1.0
        with pytest.raises(ConfigurationError):
            ProbabilisticFSM(transition=transition, emission=emission, final_state=2)

    def test_rejects_non_absorbing_final(self):
        transition = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.5, 0.0, 0.5]])
        emission = np.zeros((3, 2))
        emission[1, 1] = 1.0
        with pytest.raises(ConfigurationError):
            ProbabilisticFSM(transition=transition, emission=emission, final_state=2)

    def test_rejects_emission_on_queue_zero(self):
        transition = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 1.0]])
        emission = np.zeros((3, 2))
        emission[1, 0] = 1.0
        with pytest.raises(ConfigurationError):
            ProbabilisticFSM(transition=transition, emission=emission, final_state=2)

    def test_rejects_unreachable_final(self):
        transition = np.array(
            [[0.0, 1.0, 0.0, 0.0],
             [0.0, 1.0, 0.0, 0.0],   # state 1 loops forever
             [0.0, 0.0, 0.0, 1.0],
             [0.0, 0.0, 0.0, 1.0]]
        )
        emission = np.zeros((4, 2))
        emission[1, 1] = 1.0
        emission[2, 1] = 1.0
        with pytest.raises(ConfigurationError):
            ProbabilisticFSM(transition=transition, emission=emission, final_state=3)

    def test_rejects_same_initial_and_final(self):
        transition = np.eye(2)
        with pytest.raises(ConfigurationError):
            ProbabilisticFSM(
                transition=transition, emission=np.zeros((2, 2)),
                initial_state=0, final_state=0,
            )

    def test_negative_final_state_wraps(self):
        fsm = simple_fsm()
        assert fsm.final_state == 2


class TestSampling:
    def test_path_structure(self, rng):
        fsm = simple_fsm()
        path = fsm.sample_path(rng)
        assert isinstance(path, TaskPath)
        assert len(path) == 1
        assert path.queues[0] in (1, 2)

    def test_emission_frequencies(self, rng):
        fsm = simple_fsm()
        counts = {1: 0, 2: 0}
        for path in fsm.iter_sample_paths(4000, rng):
            counts[path.queues[0]] += 1
        assert counts[1] / 4000 == pytest.approx(0.5, abs=0.03)

    def test_nonabsorbing_numerical_guard(self, rng):
        # repeat_prob close to 1 gives long but finite paths; max_length
        # turns pathological loops into errors rather than hangs.
        fsm = simple_fsm()
        with pytest.raises(ConfigurationError):
            fsm.sample_path(rng, max_length=0)


class TestScoring:
    def test_path_log_prob(self, rng):
        fsm = simple_fsm()
        path = TaskPath(states=(1,), queues=(1,))
        # p = 1.0 (0->1) * 0.5 (emit q1) * 1.0 (1->final)
        assert fsm.path_log_prob(path) == pytest.approx(np.log(0.5))

    def test_impossible_path_is_minus_inf(self):
        fsm = chain_fsm([1, 2], n_queues=3)
        bad = TaskPath(states=(1, 2), queues=(2, 1))  # wrong order
        assert fsm.path_log_prob(bad) == -np.inf

    def test_sampled_paths_have_finite_log_prob(self, rng):
        fsm = tiered_fsm([[1], [2, 3]], n_queues=4)
        for path in fsm.iter_sample_paths(50, rng):
            assert np.isfinite(fsm.path_log_prob(path))


class TestExpectedVisits:
    def test_chain_visits_every_queue_once(self):
        fsm = chain_fsm([1, 2, 3], n_queues=4)
        visits = fsm.expected_visits()
        np.testing.assert_allclose(visits[1:], 1.0)
        assert visits[0] == 0.0

    def test_tiered_visits_split_by_weights(self):
        fsm = tiered_fsm([[1, 2]], n_queues=3, weights=[[3.0, 1.0]])
        visits = fsm.expected_visits()
        assert visits[1] == pytest.approx(0.75)
        assert visits[2] == pytest.approx(0.25)

    def test_geometric_loop_visits(self):
        from repro.fsm import probabilistic_branch_fsm

        fsm = probabilistic_branch_fsm([1], [1.0], n_queues=2, repeat_prob=0.5)
        visits = fsm.expected_visits()
        # Geometric number of visits with mean 1 / (1 - 0.5) = 2.
        assert visits[1] == pytest.approx(2.0)

    def test_monte_carlo_agreement(self, rng):
        fsm = tiered_fsm([[1], [2, 3]], n_queues=4)
        visits = fsm.expected_visits()
        counts = np.zeros(4)
        n = 3000
        for path in fsm.iter_sample_paths(n, rng):
            for q in path.queues:
                counts[q] += 1
        np.testing.assert_allclose(counts / n, visits, atol=0.05)
