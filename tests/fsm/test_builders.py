"""Tests for the FSM builders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fsm import (
    TaskPath,
    chain_fsm,
    load_balanced_fsm,
    probabilistic_branch_fsm,
    tiered_fsm,
)


class TestChainFSM:
    def test_deterministic_path(self, rng):
        fsm = chain_fsm([2, 1, 3], n_queues=4)
        path = fsm.sample_path(rng)
        assert path.queues == (2, 1, 3)

    def test_allows_repeated_queues(self, rng):
        fsm = chain_fsm([1, 1], n_queues=2)
        assert fsm.sample_path(rng).queues == (1, 1)

    def test_rejects_queue_zero(self):
        with pytest.raises(ConfigurationError):
            chain_fsm([0, 1], n_queues=2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            chain_fsm([5], n_queues=3)


class TestTieredFSM:
    def test_one_queue_per_tier(self, rng):
        fsm = tiered_fsm([[1, 2], [3], [4, 5, 6]], n_queues=7)
        for path in fsm.iter_sample_paths(30, rng):
            assert len(path) == 3
            assert path.queues[0] in (1, 2)
            assert path.queues[1] == 3
            assert path.queues[2] in (4, 5, 6)

    def test_rejects_empty_tier(self):
        with pytest.raises(ConfigurationError):
            tiered_fsm([[1], []], n_queues=3)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ConfigurationError):
            tiered_fsm([[1, 2]], n_queues=3, weights=[[1.0]])

    def test_weighted_dispatch(self, rng):
        fsm = tiered_fsm([[1, 2]], n_queues=3, weights=[[9.0, 1.0]])
        hits = sum(p.queues[0] == 1 for p in fsm.iter_sample_paths(2000, rng))
        assert hits / 2000 == pytest.approx(0.9, abs=0.03)


class TestLoadBalancedFSM:
    def test_pre_and_post_queues(self, rng):
        fsm = load_balanced_fsm(
            server_queues=[2, 3], n_queues=5, pre_queues=[1], post_queues=[4, 1]
        )
        path = fsm.sample_path(rng)
        assert path.queues[0] == 1
        assert path.queues[1] in (2, 3)
        assert path.queues[2] == 4
        assert path.queues[3] == 1  # revisit of the shared network queue

    def test_skewed_weights(self, rng):
        fsm = load_balanced_fsm(
            server_queues=[1, 2], n_queues=3, weights=[0.99, 0.01]
        )
        hits = sum(p.queues[0] == 2 for p in fsm.iter_sample_paths(3000, rng))
        assert hits < 100


class TestProbabilisticBranchFSM:
    def test_single_visit_without_repeat(self, rng):
        fsm = probabilistic_branch_fsm([1, 2], [0.5, 0.5], n_queues=3)
        assert len(fsm.sample_path(rng)) == 1

    def test_repeat_gives_geometric_lengths(self, rng):
        fsm = probabilistic_branch_fsm([1], [1.0], n_queues=2, repeat_prob=0.5)
        lengths = [len(fsm.sample_path(rng)) for _ in range(2000)]
        assert np.mean(lengths) == pytest.approx(2.0, rel=0.1)

    def test_rejects_repeat_prob_one(self):
        with pytest.raises(ConfigurationError):
            probabilistic_branch_fsm([1], [1.0], n_queues=2, repeat_prob=1.0)


class TestTaskPath:
    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            TaskPath(states=(1,), queues=(1, 2))

    def test_rejects_queue_zero(self):
        with pytest.raises(ConfigurationError):
            TaskPath(states=(1,), queues=(0,))

    def test_from_queues(self):
        path = TaskPath.from_queues([3, 1, 2])
        assert path.queues == (3, 1, 2)
        assert path.n_events == 4
