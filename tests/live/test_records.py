"""Tests for measurement records and trace assembly (repro.live.records)."""

import numpy as np
import pytest

from repro.errors import IngestError, InvalidEventSetError
from repro.events.serialization import (
    measurement_record,
    validate_measurement_record,
)
from repro.events.subset import subset_trace
from repro.live.records import (
    assemble_trace,
    record_times,
    replay_batches,
    trace_to_records,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(scope="module")
def trace():
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks=120, random_state=7)
    return TaskSampling(fraction=0.3).observe(sim.events, random_state=2)


def group_by_task(records):
    by_task = {}
    for r in records:
        by_task.setdefault(r["task"], []).append(r)
    return by_task


def assert_traces_bitwise(a, b):
    np.testing.assert_array_equal(a.skeleton.task, b.skeleton.task)
    np.testing.assert_array_equal(a.skeleton.seq, b.skeleton.seq)
    np.testing.assert_array_equal(a.skeleton.queue, b.skeleton.queue)
    np.testing.assert_array_equal(a.skeleton.state, b.skeleton.state)
    np.testing.assert_array_equal(a.skeleton.arrival, b.skeleton.arrival)
    np.testing.assert_array_equal(a.skeleton.departure, b.skeleton.departure)
    np.testing.assert_array_equal(a.arrival_observed, b.arrival_observed)
    np.testing.assert_array_equal(a.departure_observed, b.departure_observed)
    assert a.skeleton.n_queues == b.skeleton.n_queues
    for q in range(a.skeleton.n_queues):
        np.testing.assert_array_equal(
            a.skeleton.queue_order(q), b.skeleton.queue_order(q)
        )


class TestMeasurementRecord:
    def test_constructor_normalizes_and_validates(self):
        r = measurement_record(task=3, seq=1, queue=2, counter=5, arrival=1.5)
        assert r["arrival"] == 1.5 and r["departure"] is None and not r["last"]
        with pytest.raises(InvalidEventSetError, match="seq"):
            measurement_record(task=0, seq=-1, queue=1, counter=0)
        with pytest.raises(InvalidEventSetError, match="counter"):
            measurement_record(task=0, seq=1, queue=1, counter=-1)
        with pytest.raises(InvalidEventSetError, match="initial event"):
            measurement_record(task=0, seq=0, queue=1, counter=0)
        with pytest.raises(InvalidEventSetError, match="last event"):
            measurement_record(task=0, seq=1, queue=1, counter=0, departure=2.0)

    def test_validate_rejects_malformed_input(self):
        with pytest.raises(InvalidEventSetError, match="dicts"):
            validate_measurement_record(("task", 0))
        with pytest.raises(InvalidEventSetError, match="missing fields"):
            validate_measurement_record({"task": 0, "seq": 1})
        with pytest.raises(InvalidEventSetError, match="malformed"):
            validate_measurement_record(
                {"task": 0, "seq": 1, "queue": 1, "counter": 0,
                 "arrival": "not-a-time"}
            )

    def test_record_times_collects_measured_clocks_only(self):
        seq0 = measurement_record(task=0, seq=0, queue=0, counter=0, arrival=0.0)
        assert record_times(seq0) == []  # the conventional 0.0 is not a measurement
        inner = measurement_record(task=0, seq=1, queue=1, counter=0, arrival=3.5)
        assert record_times(inner) == [3.5]
        final = measurement_record(
            task=0, seq=2, queue=2, counter=0, arrival=4.0, departure=5.0,
            last=True,
        )
        assert record_times(final) == [4.0, 5.0]


class TestRoundTrip:
    def test_full_trace_round_trips_bitwise(self, trace):
        records = trace_to_records(trace)
        assert len(records) == trace.skeleton.n_events
        rebuilt = assemble_trace(
            list(group_by_task(records).values()),
            n_queues=trace.skeleton.n_queues,
        )
        assert_traces_bitwise(trace, rebuilt)

    def test_task_subset_matches_subset_trace_bitwise(self, trace):
        by_task = group_by_task(trace_to_records(trace))
        chosen = sorted(by_task)[10:40]
        rebuilt = assemble_trace(
            [by_task[t] for t in chosen], n_queues=trace.skeleton.n_queues
        )
        assert_traces_bitwise(subset_trace(trace, chosen), rebuilt)

    def test_shuffled_records_assemble_identically(self, trace):
        records = trace_to_records(trace)
        rng = np.random.default_rng(0)
        shuffled = [records[i] for i in rng.permutation(len(records))]
        rebuilt = assemble_trace(
            list(group_by_task(shuffled).values()),
            n_queues=trace.skeleton.n_queues,
        )
        assert_traces_bitwise(trace, rebuilt)

    def test_assembly_validation(self, trace):
        by_task = group_by_task(trace_to_records(trace))
        with pytest.raises(IngestError, match="no complete tasks"):
            assemble_trace([], n_queues=3)
        first = sorted(by_task)[0]
        with pytest.raises(IngestError, match="n_queues"):
            assemble_trace([by_task[first]], n_queues=1)
        impostor = [dict(r, task=10_000) for r in by_task[first]]
        with pytest.raises(IngestError, match="conflicting event counters"):
            assemble_trace([by_task[first], impostor], n_queues=3)

    def test_replay_batches_cover_everything_in_entry_order(self, trace):
        batches = replay_batches(trace, batch_tasks=16)
        watermarks = [w for w, _ in batches]
        assert watermarks == sorted(watermarks)
        n_records = sum(len(b) for _, b in batches)
        assert n_records == trace.skeleton.n_events
        # Every measurement in a batch is no older than its watermark.
        for watermark, batch in batches:
            for record in batch:
                for t in record_times(record):
                    assert t >= watermark
