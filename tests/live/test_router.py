"""Tests for the shared-nothing multi-service tier (repro.live.router).

Three layers:

* **Partition math** — the block-cyclic stripe and the slot rebase are
  pure functions; the rebase must enumerate each partition's entry slots
  densely (0, 1, 2, ...) in global-slot order, which is what lets every
  partition's stream believe it is watching a whole (smaller) system.
* **Tier end-to-end** — two real service processes behind one router,
  fronted by the stock :class:`LiveServer`: an unmodified
  :class:`LiveClient` drives the whole tier through one address.
* **Crash recovery** — SIGKILL one partition's process mid-stream; the
  router restarts it from its checkpoint, replays the spooled tail, and
  the tier's final estimates are bitwise the unkilled run's.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import IngestError
from repro.live import (
    IngestRouter,
    LiveClient,
    LiveServer,
    entry_partition,
    rebase_slot,
    replay_batches,
    trace_to_records,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


def make_trace(n_tasks=150, seed=3, fraction=0.3):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=1)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def tier_config(trace, horizon, windows=2, **extra):
    config = {
        "n_queues": trace.skeleton.n_queues,
        "window": horizon / windows,
        "stem_iterations": 6,
        "random_state": 5,
        "poll_interval": 0.02,
    }
    config.update(extra)
    return config


def drive(target, trace, batch_tasks=16, kill_at=None, router=None,
          victim=0):
    """Replay *trace* into *target* (a router or a client), optionally
    SIGKILLing partition *victim*'s process before batch *kill_at*."""
    for i, (watermark, batch) in enumerate(
        replay_batches(trace, batch_tasks=batch_tasks)
    ):
        if kill_at is not None and i == kill_at:
            proc = router._partitions[victim].process
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(10.0)  # make the death visible before we continue
        target.advance_watermark(watermark)
        target.ingest(batch)
    target.seal()


def wait_finished(target, timeout=180.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        health = target.health()
        if health["status"] in ("finished", "failed"):
            return health
        time.sleep(0.05)
    raise AssertionError(f"tier never finished: {target.health()}")


def normalized(estimates):
    """Estimates as comparable tuples keyed on (partition, local index)."""
    out = []
    for r in estimates:
        rates = None if r["rates"] is None else np.asarray(r["rates"])
        out.append((r["partition"], r["partition_index"], r["t_start"],
                    r["t_end"], r["n_tasks"], rates))
    return out


class TestPartitionMath:
    def test_block_cyclic_stripe(self):
        n, block = 3, 4
        owners = [entry_partition(s, n, block) for s in range(3 * block * n)]
        # Whole blocks stay together, partitions rotate per block.
        assert owners[:4] == [0, 0, 0, 0]
        assert owners[4:8] == [1, 1, 1, 1]
        assert owners[8:12] == [2, 2, 2, 2]
        assert owners[12:16] == [0, 0, 0, 0]

    @pytest.mark.parametrize("n,block", [(1, 1), (2, 4), (3, 5), (4, 32)])
    def test_rebase_enumerates_each_partition_densely(self, n, block):
        """Each partition's rebased slots are exactly 0, 1, 2, ... in
        global-slot order — a dense entry prefix, as its stream requires."""
        owned = {p: [] for p in range(n)}
        for slot in range(10 * block * n + 3):
            p = entry_partition(slot, n, block)
            owned[p].append(rebase_slot(slot, n, block))
        for slots in owned.values():
            assert slots == list(range(len(slots)))

    def test_config_validation(self):
        with pytest.raises(IngestError, match="n_queues"):
            IngestRouter(2, {"window": 5.0})
        with pytest.raises(IngestError, match="window"):
            IngestRouter(2, {"n_queues": 3})
        with pytest.raises(IngestError, match="unknown service_config"):
            IngestRouter(2, {"n_queues": 3, "window": 5.0, "wibble": 1})
        with pytest.raises(IngestError, match="at least one"):
            IngestRouter(0, {"n_queues": 3, "window": 5.0})
        with pytest.raises(IngestError, match="block"):
            IngestRouter(2, {"n_queues": 3, "window": 5.0}, block=0)


class TestTierEndToEnd:
    def test_one_address_serves_the_whole_tier(self):
        """An unmodified LiveClient drives an N=2 tier through a stock
        LiveServer: ingestion is striped across both services, queries
        come back merged with partition provenance."""
        trace, horizon = make_trace()
        config = tier_config(trace, horizon, windows=2)
        with IngestRouter(2, config, block=8) as router:
            with LiveServer(router, authkey=b"tier-key") as server:
                with LiveClient(server.address, authkey=b"tier-key") as client:
                    drive(client, trace)
                    health = wait_finished(client)
        assert health["status"] == "finished", health["error"]
        # Every record landed on some partition; none were lost in routing.
        assert health["n_admitted"] == trace.skeleton.n_events
        assert health["router"]["n_records_routed"] == trace.skeleton.n_events
        assert health["router"]["n_parked"] == 0
        assert health["router"]["n_restarts"] == 0
        assert len(health["partitions"]) == 2
        # Both partitions did real work (block=8 stripes 150 tasks widely).
        assert all(h["n_admitted"] > 0 for h in health["partitions"])
        assert sum(
            h["n_admitted"] for h in health["partitions"]
        ) == trace.skeleton.n_events

    def test_estimates_and_anomalies_merge_with_provenance(self):
        trace, horizon = make_trace()
        config = tier_config(trace, horizon, windows=2)
        with IngestRouter(2, config, block=8) as router:
            drive(router, trace)
            health = wait_finished(router)
            estimates = router.estimates()
            anomalies = router.anomalies()
            tail = router.estimates(since=1)
            with pytest.raises(IngestError, match="nonnegative"):
                router.estimates(since=-1)
        assert health["status"] == "finished", health["error"]
        assert estimates, "no windows published"
        assert health["windows_published"] == len(estimates)
        # Merged order is global time order with a stable partition tie
        # break, re-indexed; provenance keys survive.
        keys = [(r["t_start"], r["partition"]) for r in estimates]
        assert keys == sorted(keys)
        assert [r["index"] for r in estimates] == list(range(len(estimates)))
        assert {r["partition"] for r in estimates} == {0, 1}
        assert all("partition_index" in r for r in estimates)
        assert estimates[1:] == tail
        for report in anomalies:
            assert report["partition"] in (0, 1)

    def test_out_of_order_records_park_and_flush(self):
        """A record arriving before its task's entry record has no owner
        yet: it parks at the router and flushes to the owner the moment
        the entry record names one."""
        trace, horizon = make_trace(n_tasks=40)
        config = tier_config(trace, horizon, windows=1)
        records = trace_to_records(trace)
        by_task = {}
        for r in records:
            by_task.setdefault(r["task"], []).append(r)
        first = sorted(by_task)[0]
        followers = [r for r in by_task[first] if r["seq"] != 0]
        entry = [r for r in by_task[first] if r["seq"] == 0]
        with IngestRouter(2, config, block=4) as router:
            summary = router.ingest(followers)
            assert summary["parked"] == len(followers)
            assert summary["admitted"] == 0
            summary = router.ingest(entry)
            assert summary["parked"] == 0  # flushed with the entry record
            assert summary["admitted"] == 1 + len(followers)
            # Remaining tasks go in whole; sealing with nothing parked
            # reports nothing unroutable.
            rest = [r for t in sorted(by_task)[1:] for r in by_task[t]]
            router.ingest(rest)
            router.advance_watermark(horizon)
            sealed = router.seal()
            assert sealed["unroutable_records"] == 0
            with pytest.raises(IngestError, match="sealed"):
                router.ingest(entry)
            health = wait_finished(router)
        assert health["n_admitted"] == len(records)

    def test_sealing_drops_and_counts_orphaned_records(self):
        trace, horizon = make_trace(n_tasks=40)
        config = tier_config(trace, horizon, windows=1)
        records = trace_to_records(trace)
        orphans = [r for r in records if r["seq"] != 0][:3]
        with IngestRouter(2, config, block=4) as router:
            router.ingest(orphans)
            sealed = router.seal()
            assert sealed["unroutable_records"] == len(orphans)
            health = router.health()
            assert health["router"]["n_unroutable"] == len(orphans)


@pytest.mark.slow
class TestCrashRecovery:
    def test_sigkill_partition_recovers_bitwise(self, tmp_path):
        """The acceptance contract: kill -9 one partition's service
        process mid-stream; the router restarts it from its newest
        checkpoint, replays the spooled tail, re-asserts the watermark,
        and the tier's final estimates are bitwise the unkilled run's."""
        trace, horizon = make_trace(n_tasks=150)
        config = tier_config(trace, horizon, windows=3, checkpoint_every=1)

        with IngestRouter(2, config, block=4) as router:
            drive(router, trace, batch_tasks=8)
            ref_health = wait_finished(router)
            ref = normalized(router.estimates())
        assert ref_health["status"] == "finished", ref_health["error"]
        assert ref, "reference run published nothing"

        with IngestRouter(
            2, config, block=4, checkpoint_dir=str(tmp_path),
            probe_interval=0.2,
        ) as router:
            # Kill partition 0 two thirds of the way through the replay —
            # late enough that windows (and with checkpoint_every=1, a
            # checkpoint) exist, early enough that real ingestion follows.
            n_batches = len(replay_batches(trace, batch_tasks=8))
            drive(router, trace, batch_tasks=8,
                  kill_at=(2 * n_batches) // 3, router=router, victim=0)
            health = wait_finished(router)
            got = normalized(router.estimates())
        assert health["status"] == "finished", health["error"]
        assert health["router"]["n_restarts"] >= 1
        assert health["router"]["restarts_per_partition"][0] >= 1
        assert health["n_admitted"] == trace.skeleton.n_events

        assert len(ref) == len(got)
        for a, b in zip(ref, got):
            assert a[:5] == b[:5]
            if a[5] is None:
                assert b[5] is None
            else:
                np.testing.assert_array_equal(a[5], b[5])

    def test_dead_partition_degrades_health_then_recovers(self, tmp_path):
        """Between the kill and the next probe/forward, health reports the
        tier degraded instead of lying or hanging; the supervisor then
        brings the partition back without any ingest traffic."""
        trace, horizon = make_trace(n_tasks=60)
        config = tier_config(trace, horizon, windows=1)
        with IngestRouter(
            2, config, block=4, checkpoint_dir=str(tmp_path),
            probe_interval=0.2,
        ) as router:
            proc = router._partitions[1].process
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(10.0)
            # The supervisor probe restores the partition on its own.
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if router._partitions[1].n_restarts >= 1:
                    break
                time.sleep(0.05)
            health = router.health()
            assert health["router"]["n_restarts"] >= 1
            assert health["status"] == "serving"
            # The revived partition serves traffic again.
            drive(router, trace)
            health = wait_finished(router)
            assert health["status"] == "finished", health["error"]
            assert health["n_admitted"] == trace.skeleton.n_events
