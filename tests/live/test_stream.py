"""Tests for the live trace stream (repro.live.stream).

The acceptance contract lives in ``TestLiveEquivalence``: a recorded
trace ingested in order with no stragglers, then sealed, drives the
streaming estimator to window estimates **bitwise identical** to the
replay / windowed path at the same seed, for any shard-worker count.
"""

import numpy as np
import pytest

from repro.errors import IngestError
from repro.live import LiveTraceStream, replay_batches, trace_to_records
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import ReplayTraceStream, StreamingEstimator, WindowedEstimator
from repro.online.windowed import _entry_time_estimates
from repro.simulate import simulate_network


def make_trace(n_tasks=200, seed=11, fraction=0.3, obs_seed=1):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=obs_seed)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def ingested(trace, **kwargs):
    """A live stream with the whole recorded trace ingested and sealed."""
    stream = LiveTraceStream(n_queues=trace.skeleton.n_queues, **kwargs)
    stream.ingest(trace_to_records(trace))
    stream.seal()
    return stream


def assert_windows_equal(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert (a.t_start, a.t_end) == (b.t_start, b.t_end)
        assert (a.n_tasks, a.n_observed_tasks) == (b.n_tasks, b.n_observed_tasks)
        if a.rates is None:
            assert b.rates is None
        else:
            np.testing.assert_array_equal(a.rates, b.rates)


class TestIngestion:
    def test_validation(self):
        with pytest.raises(IngestError, match="n_queues"):
            LiveTraceStream(n_queues=1)
        with pytest.raises(IngestError, match="lateness"):
            LiveTraceStream(n_queues=3, lateness=-1.0)
        with pytest.raises(IngestError, match="max_pending"):
            LiveTraceStream(n_queues=3, max_pending=0)
        stream = LiveTraceStream(n_queues=3)
        with pytest.raises(IngestError, match="missing fields"):
            stream.ingest([{"task": 0}])
        with pytest.raises(IngestError, match="queue 7"):
            stream.ingest([
                {"task": 0, "seq": 1, "queue": 7, "counter": 0}
            ])
        with pytest.raises(IngestError, match="no task has been fully ingested"):
            stream.trace

    def test_duplicates_are_idempotent(self):
        trace, _ = make_trace(n_tasks=60)
        records = trace_to_records(trace)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        first = stream.ingest(records)
        again = stream.ingest(records)
        assert first["admitted"] == len(records)
        assert again["admitted"] == 0
        assert again["duplicates"] == len(records)
        stream.seal()
        assert stream.trace.skeleton.n_tasks == trace.skeleton.n_tasks

    def test_conflicting_records_are_rejected_loudly(self):
        stream = LiveTraceStream(n_queues=3)
        base = [
            {"task": 0, "seq": 0, "queue": 0, "counter": 0, "arrival": 0.0},
            {"task": 0, "seq": 1, "queue": 1, "counter": 0, "arrival": 1.0,
             "last": True},
        ]
        stream.ingest(base)
        with pytest.raises(IngestError, match="conflicting `last`"):
            stream.ingest([
                {"task": 1, "seq": 1, "queue": 1, "counter": 1, "last": True},
                {"task": 1, "seq": 2, "queue": 2, "counter": 0, "last": True},
            ])
        with pytest.raises(IngestError, match="beyond the declared last"):
            stream.ingest([
                {"task": 2, "seq": 1, "queue": 1, "counter": 2, "last": True},
                {"task": 2, "seq": 2, "queue": 2, "counter": 1},
            ])
        with pytest.raises(IngestError, match="counter 0 claimed"):
            stream.ingest([
                {"task": 3, "seq": 0, "queue": 0, "counter": 0},
            ])

    def test_sealed_stream_refuses_records(self):
        trace, _ = make_trace(n_tasks=60)
        stream = ingested(trace)
        with pytest.raises(IngestError, match="sealed"):
            stream.ingest(trace_to_records(trace)[:1])
        assert stream.seal() == {"dropped_tasks": 0}  # idempotent

    def test_backpressure_bounds_the_buffer(self):
        trace, _ = make_trace(n_tasks=80)
        # Hold back every seq-0 record so nothing can finalize: the buffer
        # fills with unassemblable tasks until the bound pushes back.
        records = [r for r in trace_to_records(trace) if r["seq"] != 0]
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues, max_pending=50)
        with pytest.raises(IngestError, match="backpressure"):
            stream.ingest(records)
        assert stream.n_pending == 50
        # Records *completing* buffered tasks are always admitted — they
        # are how the assembler drains — so shipping the withheld seq-0
        # records of the buffered tasks frees the buffer again.
        buffered = set(stream._buffer)
        seq0 = [
            r for r in trace_to_records(trace)
            if r["seq"] == 0 and r["task"] in buffered
        ]
        stream.ingest(seq0)
        assert stream.n_pending < 50
        stream.ingest(records[-4:])  # new tasks accepted again

    def test_backpressure_batches_still_drain_what_they_admitted(self):
        """Regression: a batch aborted by backpressure must still assemble
        the completion records it admitted before the error — otherwise a
        full buffer could never empty and retries would livelock."""
        trace, _ = make_trace(n_tasks=80)
        records = trace_to_records(trace)  # task-major: tasks complete in order
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues, max_pending=4)
        # Every prefix of the task-major record stream completes tasks as
        # it goes, so each aborted batch finalizes (drains) some tasks
        # even though it also hits the bound; retrying from the start must
        # therefore terminate.
        for _ in range(len(records)):
            try:
                stream.ingest(records)
                break
            except IngestError as exc:
                assert "backpressure" in str(exc)
        else:
            raise AssertionError("backpressure retries made no progress")
        stream.seal()
        assert stream.trace.skeleton.n_tasks == trace.skeleton.n_tasks

    def test_out_of_order_seq_gap_cannot_poison_assembly(self):
        """Regression: records at seqs beyond a later-arriving `last` must
        be rejected when `last` lands, not pass the completeness gate by
        count and blow up (unrecoverably) inside trace assembly."""
        stream = LiveTraceStream(n_queues=4)
        stream.ingest([
            {"task": 0, "seq": 0, "queue": 0, "counter": 0, "arrival": 0.0},
            {"task": 0, "seq": 3, "queue": 3, "counter": 0, "arrival": 4.0},
        ])
        with pytest.raises(IngestError, match=r"seq \[3\] lie beyond"):
            stream.ingest([
                {"task": 0, "seq": 2, "queue": 2, "counter": 0,
                 "arrival": 3.0, "last": True},
            ])
        # The stream stays serviceable for well-formed tasks.
        stream.ingest([
            {"task": 1, "seq": 0, "queue": 0, "counter": 1, "arrival": 0.0},
            {"task": 1, "seq": 1, "queue": 1, "counter": 0, "arrival": 1.0,
             "departure": 2.0, "last": True},
        ])

    def test_negative_queue_is_rejected_at_validation(self):
        stream = LiveTraceStream(n_queues=3)
        with pytest.raises(IngestError, match="queue must be >= 0"):
            stream.ingest([
                {"task": 0, "seq": 1, "queue": -1, "counter": 0}
            ])

    def test_stragglers_are_counted_and_their_tasks_dropped(self):
        trace, horizon = make_trace(n_tasks=80)
        by_task = {}
        for r in trace_to_records(trace):
            by_task.setdefault(r["task"], []).append(r)
        entries = _entry_time_estimates(trace)
        order = sorted(entries, key=lambda t: entries[t])
        # The victim must carry measured times — only a measurement can be
        # older than the watermark (structure-only records carry no clock).
        from repro.live.records import record_times

        victim = next(
            t for t in order[3:]
            if any(record_times(r) for r in by_task[t])
        )
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        for task in order:
            if task != victim:
                stream.ingest(by_task[task])
        stream.advance_watermark(horizon + 1.0)
        late = stream.ingest(by_task[victim])
        assert late["stragglers"] >= 1
        assert late["dropped_tasks"] == 1
        # Records admitted before the straggler arrived (the time-less
        # seq-0 structure record) are purged with the task.
        assert victim not in stream._buffer
        assert stream.n_dropped_tasks == 1
        stream.seal()
        revealed = {task for task, _ in stream.poll(float("inf"))}
        assert victim not in revealed
        assert len(revealed) == trace.skeleton.n_tasks - 1

    def test_late_entry_record_of_a_dropped_task_resolves_its_slot(self):
        """Regression: when a task is straggler-dropped before its seq-0
        record arrived, that record's later arrival must resolve the
        entry slot — otherwise the prefix stalls on the hole forever on
        an always-on (never sealed) stream."""
        trace, horizon = make_trace(n_tasks=60)
        by_task = {}
        for r in trace_to_records(trace):
            by_task.setdefault(r["task"], []).append(r)
        entries = _entry_time_estimates(trace)
        order = sorted(entries, key=lambda t: entries[t])
        from repro.live.records import record_times

        victim = next(
            t for t in order[2:-2]
            if any(record_times(r) for r in by_task[t])
        )
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        # Everyone but the victim lands normally; the victim's entry slot
        # is a hole that blocks finalization of every later task.
        for task in order:
            if task != victim:
                stream.ingest(by_task[task])
        stream.advance_watermark(horizon + 1.0)
        stalled_at = len(stream.poll(float("inf")))
        assert stalled_at < len(order) - 1  # the hole blocks the prefix
        # Now the victim's timed records arrive — stragglers, so the task
        # is dropped before its seq-0 record was ever seen — and its
        # seq-0 record arrives last, which must resolve the hole.
        timed_first = sorted(
            by_task[victim], key=lambda r: (r["seq"] == 0, r["seq"])
        )
        stream.ingest(timed_first)
        assert stream.n_dropped_tasks == 1
        # The hole resolved: reveals advance past the stall without any
        # seal (an always-on stream never seals) ...
        assert len(stream.poll(float("inf"))) > 0
        # ... and sealing confirms nothing but the victim was lost.
        stream.seal()
        revealed = {task for task, _ in stream.poll(float("inf"))}
        assert victim not in revealed
        assert stream.n_revealed == len(order) - 1

    def test_fully_buffered_task_is_saved_at_the_straggler_boundary(self):
        """Regression: the straggler purge must assemble-then-check — a
        record older than the cutoff that is the task's final missing
        piece completes a fully buffered task, so dropping the task would
        lose data the stream already holds in full."""
        stream = LiveTraceStream(n_queues=3)
        stream.ingest([
            {"task": 0, "seq": 0, "queue": 0, "counter": 0},
            {"task": 0, "seq": 1, "queue": 1, "arrival": 1.0, "counter": 0,
             "departure": 2.0, "last": True},
        ])
        stream.ingest([
            {"task": 1, "seq": 0, "queue": 0, "counter": 1},
            {"task": 1, "seq": 1, "queue": 1, "arrival": 3.0, "counter": 1},
        ])
        stream.advance_watermark(100.0)  # far past every measured time
        summary = stream.ingest([
            {"task": 1, "seq": 2, "queue": 2, "arrival": 4.0, "counter": 0,
             "departure": 5.0, "last": True},
        ])
        assert summary["late"] == 1
        assert summary["stragglers"] == 0
        assert summary["dropped_tasks"] == 0
        stream.seal()
        assert {t for t, _ in stream.poll(float("inf"))} == {0, 1}

    def test_incomplete_straggler_task_is_still_dropped(self):
        """The boundary save applies only to completing records: an old
        record that leaves the task incomplete still purges it."""
        stream = LiveTraceStream(n_queues=3)
        stream.ingest([
            {"task": 0, "seq": 0, "queue": 0, "counter": 0},
        ])
        stream.advance_watermark(100.0)
        summary = stream.ingest([
            {"task": 0, "seq": 1, "queue": 1, "arrival": 1.0, "counter": 0},
        ])
        assert summary["stragglers"] == 1
        assert summary["dropped_tasks"] == 1
        assert stream.n_dropped_tasks == 1

    def test_lateness_bound_admits_and_counts_late_records(self):
        trace, horizon = make_trace(n_tasks=60)
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, lateness=2 * horizon
        )
        stream.advance_watermark(horizon)  # everything is now "late"
        summary = stream.ingest(trace_to_records(trace))
        assert summary["stragglers"] == 0
        assert summary["late"] > 0
        assert stream.n_late == summary["late"]
        stream.seal()
        assert stream.trace.skeleton.n_tasks == trace.skeleton.n_tasks

    def test_seal_drops_incomplete_tasks_and_unblocks_the_prefix(self):
        trace, _ = make_trace(n_tasks=60)
        by_task = {}
        for r in trace_to_records(trace):
            by_task.setdefault(r["task"], []).append(r)
        entries = _entry_time_estimates(trace)
        order = sorted(entries, key=lambda t: entries[t])
        hole = order[2]
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        for task in order:
            records = by_task[task]
            if task == hole:
                records = records[:-1]  # final record never arrives
            stream.ingest(records)
        # The hole blocks the prefix: nothing past it is revealed yet.
        assert stream.trace.skeleton.n_tasks == 2
        summary = stream.seal()
        assert summary["dropped_tasks"] == 1
        revealed = {task for task, _ in stream.poll(float("inf"))}
        assert hole not in revealed
        assert len(revealed) == len(order) - 1
        assert stream.exhausted()


class TestWatermarkReveal:
    def test_horizon_advances_with_the_watermark(self):
        trace, horizon = make_trace()
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        stream.ingest(trace_to_records(trace))
        assert stream.horizon == 0.0  # nothing revealed before a watermark
        stream.advance_watermark(horizon / 3)
        mid = stream.horizon
        assert 0.0 < mid <= horizon / 3
        # Watermarks are monotone; an older one is a no-op.
        assert stream.advance_watermark(horizon / 6) == horizon / 3
        assert stream.horizon == mid
        stream.advance_watermark(horizon)
        assert stream.horizon >= mid
        ref_horizon = ReplayTraceStream(trace).horizon
        stream.seal()
        assert stream.horizon == ref_horizon

    def test_revealed_entries_are_final(self):
        """An entry estimate handed out early is bitwise the one the
        fully ingested stream would compute — reveals never rewrite."""
        trace, horizon = make_trace()
        batches = replay_batches(trace, batch_tasks=8)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        early: list = []
        for watermark, batch in batches:
            stream.advance_watermark(watermark)
            stream.ingest(batch)
            early.extend(stream.poll(stream.horizon + 1.0))
        stream.seal()
        early.extend(stream.poll(float("inf")))
        reference = ReplayTraceStream(trace).poll(float("inf"))
        assert early == reference


class TestLiveEquivalence:
    """Acceptance: live == replay == windowed, bitwise, at any worker count."""

    def test_poll_and_subset_match_replay_bitwise(self):
        trace, horizon = make_trace()
        live = ingested(trace)
        replay = ReplayTraceStream(trace)
        assert live.poll(horizon / 3) == replay.poll(horizon / 3)
        tasks = [task for task, _ in replay.poll(horizon / 2)]
        live.poll(horizon / 2)
        a = replay.subset(tasks)
        b = live.subset(tasks)
        np.testing.assert_array_equal(a.skeleton.arrival, b.skeleton.arrival)
        np.testing.assert_array_equal(a.arrival_observed, b.arrival_observed)
        for q in range(a.skeleton.n_queues):
            np.testing.assert_array_equal(
                a.skeleton.queue_order(q), b.skeleton.queue_order(q)
            )

    def test_windows_match_windowed_estimator_bitwise(self):
        trace, horizon = make_trace(n_tasks=300, fraction=0.25)
        window = horizon / 5
        ref = WindowedEstimator(
            trace, window=window, stem_iterations=12, random_state=2
        ).run()
        got = StreamingEstimator(
            ingested(trace), window=window, stem_iterations=12,
            random_state=2, repartition="cold",
        ).run()
        assert_windows_equal(ref, got)
        assert any(w.ok for w in got)

    def test_sharded_windows_match_at_any_worker_count(self):
        trace, horizon = make_trace(n_tasks=300, fraction=0.25)
        window = horizon / 4
        ref = WindowedEstimator(
            trace, window=window, stem_iterations=10, random_state=5, shards=2
        ).run()
        for workers in (1, 2):
            got = StreamingEstimator(
                ingested(trace), window=window, stem_iterations=10,
                random_state=5, shards=2, shard_workers=workers,
                repartition="cold",
            ).run()
            assert_windows_equal(ref, got)

    def test_out_of_order_ingestion_converges_to_the_same_stream(self):
        trace, horizon = make_trace()
        records = trace_to_records(trace)
        rng = np.random.default_rng(3)
        shuffled = [records[i] for i in rng.permutation(len(records))]
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        for start in range(0, len(shuffled), 50):
            stream.ingest(shuffled[start:start + 50])
        stream.seal()
        assert stream.poll(float("inf")) == ReplayTraceStream(trace).poll(
            float("inf")
        )


class TestSnapshot:
    def test_snapshot_round_trips_mid_stream(self):
        trace, horizon = make_trace()
        batches = replay_batches(trace, batch_tasks=16)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        cut = len(batches) // 2
        for watermark, batch in batches[:cut]:
            stream.advance_watermark(watermark)
            stream.ingest(batch)
        polled = stream.poll(stream.horizon / 2)
        restored = LiveTraceStream.from_state(stream.snapshot_state())
        assert restored.n_revealed == stream.n_revealed
        assert restored.horizon == stream.horizon
        assert restored.watermark == stream.watermark
        # Both continue identically through the tail.
        for s in (stream, restored):
            for watermark, batch in batches[cut:]:
                s.advance_watermark(watermark)
                s.ingest(batch)
            s.seal()
        assert stream.poll(float("inf")) == restored.poll(float("inf"))
        assert polled + stream.poll(float("inf")) == polled  # both drained

    def test_corrupt_snapshot_is_rejected(self):
        trace, _ = make_trace(n_tasks=60)
        stream = ingested(trace)
        stream.poll(float("inf"))
        state = stream.snapshot_state()
        state["final_records"] = {}
        state["slot_task"] = {}
        state["resolved"] = {}
        with pytest.raises(IngestError, match="corrupt snapshot"):
            LiveTraceStream.from_state(state)

    def test_unknown_snapshot_versions_are_rejected(self):
        trace, _ = make_trace(n_tasks=60)
        state = ingested(trace).snapshot_state()
        state["version"] = 99
        with pytest.raises(IngestError, match="snapshot version"):
            LiveTraceStream.from_state(state)

    def test_version1_snapshots_still_restore(self):
        """Snapshots written before compaction existed (version 1) must
        keep restoring: reveal state is recomputed from the record log."""
        trace, _ = make_trace(n_tasks=60)
        stream = ingested(trace)
        polled = stream.poll(float("inf"))
        state = stream.snapshot_state()
        v1_keys = (
            "n_queues", "lateness", "max_pending", "watermark", "sealed",
            "buffer", "expected", "slot_task", "resolved", "next_slot",
            "final_records", "dropped_tasks", "n_polled", "counters",
        )
        restored = LiveTraceStream.from_state(
            {"version": 1, **{k: state[k] for k in v1_keys}}
        )
        assert restored.n_revealed == len(polled)
        assert restored.poll(float("inf")) == []
        assert restored.horizon == stream.horizon
        assert restored.retain is None


class TestCompaction:
    def test_validation(self):
        with pytest.raises(IngestError, match="retain"):
            LiveTraceStream(n_queues=3, retain=-1.0)

    def test_compact_without_retain_is_a_noop(self):
        trace, horizon = make_trace(n_tasks=60)
        stream = ingested(trace)
        stream.poll(float("inf"))
        assert stream.compact() == {
            "compacted_tasks": 0, "compacted_events": 0,
        }
        assert stream.n_compacted_tasks == 0
        assert stream.compaction is None

    def test_compaction_preserves_future_reveals_bitwise(self):
        """The acceptance property: a compacting stream reveals exactly
        the sequence its non-compacting twin reveals."""
        trace, horizon = make_trace(n_tasks=200)
        batches = replay_batches(trace, batch_tasks=10)
        plain = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        compacting = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, retain=horizon / 8
        )
        polls: dict = {id(plain): [], id(compacting): []}
        for stream in (plain, compacting):
            for watermark, batch in batches:
                stream.advance_watermark(watermark)
                stream.ingest(batch)
                polls[id(stream)].extend(stream.poll(stream.horizon + 1.0))
                stream.compact()
            stream.seal()
            polls[id(stream)].extend(stream.poll(float("inf")))
        assert polls[id(plain)] == polls[id(compacting)]
        assert compacting.n_compacted_tasks > 0
        assert (
            compacting.n_retained_tasks + compacting.n_compacted_tasks
            == trace.skeleton.n_tasks
        )
        stats = compacting.memory_stats()
        assert stats["retained_tasks"] < trace.skeleton.n_tasks
        assert stats["ready_entries"] < len(polls[id(plain)])

    def test_summary_accumulates_the_folded_statistics(self):
        trace, horizon = make_trace(n_tasks=200)
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, retain=horizon / 10
        )
        for watermark, batch in replay_batches(trace, batch_tasks=10):
            stream.advance_watermark(watermark)
            stream.ingest(batch)
            stream.poll(stream.horizon + 1.0)
            stream.compact()
        summary = stream.compaction
        assert summary is not None
        assert summary.n_tasks == stream.n_compacted_tasks
        assert summary.n_events == stream.n_compacted_events
        assert sum(summary.events_per_queue) == summary.n_events
        assert summary.first_entry <= summary.last_entry <= horizon
        measured = [
            q for q in range(stream.n_queues)
            if summary.observed_services_per_queue[q]
        ]
        assert measured  # a 30%-observed trace folds some measured services
        for q in measured:
            assert np.isfinite(summary.mean_service(q))
            assert summary.mean_service(q) > 0.0
        # The dict round trip is exact (what the snapshot stores).
        from repro.live import CompactionSummary

        clone = CompactionSummary.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()

    def test_windows_cannot_touch_compacted_tasks(self):
        trace, horizon = make_trace(n_tasks=120)
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, retain=horizon / 20
        )
        stream.ingest(trace_to_records(trace))
        stream.advance_watermark(horizon + 1.0)
        polled = stream.poll(float("inf"))
        stream.compact()
        assert stream.n_compacted_tasks > 0
        gone = polled[0][0]  # the oldest polled task was folded first
        with pytest.raises(IngestError, match="retention horizon"):
            stream.subset([gone])
        # Retained tasks still subset fine.
        retained = sorted(stream._final_records)
        assert set(stream.subset(retained).skeleton.task_ids) == set(retained)

    def test_redelivery_of_a_compacted_task_counts_as_duplicate(self):
        trace, horizon = make_trace(n_tasks=120)
        by_task: dict = {}
        for r in trace_to_records(trace):
            by_task.setdefault(r["task"], []).append(r)
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, retain=horizon / 20
        )
        stream.ingest(trace_to_records(trace))
        stream.advance_watermark(horizon + 1.0)
        polled = stream.poll(float("inf"))
        stream.compact()
        gone = polled[0][0]
        summary = stream.ingest(by_task[gone])  # an at-least-once retry
        assert summary["duplicates"] == len(by_task[gone])
        assert summary["admitted"] == 0

    def test_snapshot_round_trips_after_compaction(self):
        trace, horizon = make_trace()
        batches = replay_batches(trace, batch_tasks=16)
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, retain=horizon / 8
        )
        cut = len(batches) // 2
        for watermark, batch in batches[:cut]:
            stream.advance_watermark(watermark)
            stream.ingest(batch)
            stream.poll(stream.horizon + 1.0)
            stream.compact()
        assert stream.n_compacted_tasks > 0
        restored = LiveTraceStream.from_state(stream.snapshot_state())
        assert restored.n_revealed == stream.n_revealed
        assert restored.n_compacted_tasks == stream.n_compacted_tasks
        assert restored.compaction.to_dict() == stream.compaction.to_dict()
        assert restored.memory_stats() == stream.memory_stats()
        # Both continue identically through the tail.
        for s in (stream, restored):
            for watermark, batch in batches[cut:]:
                s.advance_watermark(watermark)
                s.ingest(batch)
            s.seal()
        assert stream.poll(float("inf")) == restored.poll(float("inf"))

    def test_compaction_bounds_the_snapshot(self):
        """The checkpoint record log is the retained tail: a compacted
        stream's snapshot is strictly smaller than its twin's."""
        import pickle

        trace, horizon = make_trace(n_tasks=200)
        plain = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        compacting = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, retain=horizon / 20
        )
        for stream in (plain, compacting):
            stream.ingest(trace_to_records(trace))
            stream.advance_watermark(horizon + 1.0)
            stream.poll(float("inf"))
            stream.compact()
        small = len(pickle.dumps(compacting.snapshot_state()))
        large = len(pickle.dumps(plain.snapshot_state()))
        assert compacting.n_compacted_tasks > 0
        assert small < large / 2

    def test_newest_finalized_task_is_always_retained(self):
        trace, horizon = make_trace(n_tasks=60)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues, retain=0.0)
        stream.ingest(trace_to_records(trace))
        stream.advance_watermark(horizon + 1.0)
        stream.poll(float("inf"))
        stream.compact()
        assert stream.n_retained_tasks >= 1
        stream.trace  # still a valid (non-empty) trace
