"""Contract tests for the versioned health schema and the metrics wire
command, parametrized over both serving front-ends (single
EstimatorService behind a LiveServer, and a shared-nothing IngestRouter
tier) so the two can never drift apart.
"""

import json
import time

import numpy as np
import pytest

from repro import telemetry
from repro.live import (
    EstimatorService,
    IngestRouter,
    LiveClient,
    LiveServer,
    LiveTraceStream,
    replay_batches,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online.streaming import StreamingEstimator
from repro.simulate import simulate_network

#: Sections every schema-1 health record must carry.
SECTIONS = ("service", "stream", "workers")


def make_trace(n_tasks=120, seed=3, fraction=0.4):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=1)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def wait_finished(health_fn, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = health_fn()
        if health["status"] in ("finished", "failed"):
            return health
        time.sleep(0.05)
    raise AssertionError("service did not finish in time")


@pytest.fixture(scope="module")
def service_replies():
    """(health, metrics_fn) from a driven single-service instance."""
    trace, horizon = make_trace()
    with telemetry.isolated(enabled=True):
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        estimator = StreamingEstimator(
            stream, window=horizon / 2, stem_iterations=6,
            min_observed_tasks=2, random_state=5,
        )
        service = EstimatorService(estimator, poll_interval=0.02)
        service.start()
        try:
            for watermark, batch in replay_batches(trace, batch_tasks=32):
                service.advance_watermark(watermark)
                service.ingest(batch)
            service.seal()
            health = wait_finished(service.health)
            replies = {
                fmt: service.metrics_report(fmt)
                for fmt in ("snapshot", "json", "prometheus")
            }
        finally:
            service.stop()
    yield health, replies


@pytest.fixture(scope="module")
def router_replies():
    """(health, metrics replies) from a driven two-partition tier."""
    trace, horizon = make_trace()
    config = {
        "n_queues": trace.skeleton.n_queues,
        "window": horizon / 2,
        "stem_iterations": 6,
        "min_observed_tasks": 2,
        "random_state": 5,
        "poll_interval": 0.02,
    }
    with telemetry.isolated(enabled=True):
        with IngestRouter(2, config, block=8) as router:
            for watermark, batch in replay_batches(trace, batch_tasks=32):
                router.advance_watermark(watermark)
                router.ingest(batch)
            router.seal()
            health = wait_finished(router.health)
            replies = {
                fmt: router.metrics_report(fmt)
                for fmt in ("snapshot", "json", "prometheus")
            }
    yield health, replies


@pytest.fixture(scope="module", params=["service", "router"])
def replies(request, service_replies, router_replies):
    if request.param == "service":
        return service_replies
    return router_replies


class TestHealthSchema:
    def test_versioned_and_sectioned(self, replies):
        health, _ = replies
        assert health["schema"] == 1
        for section in SECTIONS:
            assert section in health
            assert health[section] is None or isinstance(
                health[section], dict
            )

    def test_service_section_contract(self, replies):
        health, _ = replies
        service = health["service"]
        for key in ("status", "error", "windows_published", "anomalies",
                    "horizon", "n_records_seen"):
            assert key in service
        assert service["status"] == "finished"
        assert service["windows_published"] >= 1

    def test_stream_section_contract(self, replies):
        health, _ = replies
        stream = health["stream"]
        for key in ("watermark", "sealed", "n_admitted", "n_duplicates",
                    "n_late", "n_stragglers", "n_dropped_tasks",
                    "n_revealed", "n_pending"):
            assert key in stream
        assert stream["sealed"] is True
        assert stream["n_admitted"] > 0

    def test_flat_compat_mirror(self, replies):
        """One-release shim: every nested service/stream key is mirrored
        flat at the top level with the same value."""
        health, _ = replies
        for section in ("service", "stream"):
            body = health[section]
            if body is None:
                continue
            for key, value in body.items():
                assert key in health
                assert health[key] == value


class TestRouterHealthExtras:
    def test_router_section(self, router_replies):
        health, _ = router_replies
        router = health["router"]
        for key in ("n_partitions", "n_records_routed", "n_parked",
                    "n_unroutable", "n_restarts", "spool_records",
                    "restarts_per_partition"):
            assert key in router
        assert router["n_records_routed"] > 0
        assert len(health["partitions"]) == 2

    def test_partitions_are_schema_1(self, router_replies):
        health, _ = router_replies
        for partition in health["partitions"]:
            assert partition["schema"] == 1
            assert partition["service"]["status"] == "finished"


class TestMetricsReplies:
    def test_snapshot_schema(self, replies):
        _, metrics = replies
        snap = metrics["snapshot"]
        assert snap["schema"] == 1
        names = {m["name"] for m in snap["metrics"]}
        assert "repro_window_phase_seconds" in names
        assert "repro_stream_records_admitted_total" in names
        assert "repro_kernel_sweeps_total" in names
        assert "repro_service_windows_published_total" in names
        assert len(snap["window_traces"]) >= 1

    def test_json_parses(self, replies):
        _, metrics = replies
        parsed = json.loads(metrics["json"])
        assert parsed["schema"] == 1
        assert parsed["metrics"]

    def test_prometheus_text(self, replies):
        _, metrics = replies
        text = metrics["prometheus"]
        assert "# TYPE repro_window_phase_seconds histogram" in text
        assert "repro_window_phase_seconds_bucket" in text
        assert "repro_stream_records_admitted_total" in text

    def test_router_partition_provenance(self, router_replies):
        _, metrics = router_replies
        snap = metrics["snapshot"]
        partitions = {
            m["labels"].get("partition")
            for m in snap["metrics"]
        }
        assert {"0", "1"} <= partitions
        assert None in partitions  # the router's own series
        names = {m["name"] for m in snap["metrics"]}
        assert "repro_router_records_routed_total" in names
        text = metrics["prometheus"]
        assert 'partition="0"' in text and 'partition="1"' in text


class TestWireRoundTrip:
    def test_metrics_command_over_tcp(self):
        trace, horizon = make_trace(n_tasks=80)
        with telemetry.isolated(enabled=True):
            stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
            estimator = StreamingEstimator(
                stream, window=horizon, stem_iterations=4,
                min_observed_tasks=2, random_state=5,
            )
            service = EstimatorService(estimator, poll_interval=0.02)
            with LiveServer(service) as server:
                service.start()
                try:
                    with LiveClient(server.address) as client:
                        for watermark, batch in replay_batches(
                            trace, batch_tasks=32
                        ):
                            client.advance_watermark(watermark)
                            client.ingest(batch)
                        client.seal()
                        wait_finished(client.health)
                        snap = client.metrics("snapshot")
                        assert snap["schema"] == 1
                        assert json.loads(client.metrics("json"))["metrics"]
                        text = client.metrics("prometheus")
                        assert "repro_window_phase_seconds_bucket" in text
                        # The wire layer counts its own dispatches.
                        names = {m["name"] for m in snap["metrics"]}
                        assert "repro_server_requests_total" in names
                finally:
                    service.stop()
