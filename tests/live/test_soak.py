"""Million-record soak: acceptance for the unbounded-history bugfix.

One always-on stream ingests ~1M synthetic measurement records (a
3-queue tandem shape, one task every ``DT`` clock units) with a
retention horizon set, driving the exact per-batch cycle a live
deployment runs: ingest -> watermark -> poll -> trace access ->
compact.  The assertions are the PR's acceptance criteria:

* **flat per-batch latency** — the steady-state tail is no slower than
  the early batches (no O(history) trend in assembly or reveal);
* **bounded memory** — every growable container plateaus at the
  retention horizon's size, independent of how many tasks flowed
  through;
* **bounded checkpoints** — snapshot size plateaus instead of growing
  with stream age;
* **bitwise windows** — sampled windows subset from the incremental
  assembly are bitwise the sort-based `assemble_trace` rebuild path.

Scale with ``REPRO_SOAK_TASKS`` (3 records per task; the default is a
million-record stream).
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.events.subset import subset_trace
from repro.live import LiveTraceStream, assemble_trace

pytestmark = pytest.mark.slow

N_TASKS = int(os.environ.get("REPRO_SOAK_TASKS", "334000"))
BATCH = 1000  # tasks per ingest batch
DT = 0.01  # entry spacing: one batch spans 10 clock units
RETAIN = 50.0  # retention horizon ~= 5000 tasks


def make_batch(start_task: int, t0: float) -> list[dict]:
    records = []
    for i in range(BATCH):
        task = start_task + i
        entry = t0 + i * DT
        records.append(
            {"task": task, "seq": 0, "queue": 0, "counter": task}
        )
        records.append(
            {"task": task, "seq": 1, "queue": 1, "counter": task,
             "arrival": entry}
        )
        records.append(
            {"task": task, "seq": 2, "queue": 2, "counter": task,
             "arrival": entry + 0.4, "departure": entry + 0.9,
             "last": True}
        )
    return records


def assert_window_bitwise(got, ref):
    np.testing.assert_array_equal(got.skeleton.task, ref.skeleton.task)
    np.testing.assert_array_equal(got.skeleton.arrival, ref.skeleton.arrival)
    np.testing.assert_array_equal(
        got.skeleton.departure, ref.skeleton.departure
    )
    np.testing.assert_array_equal(got.arrival_observed, ref.arrival_observed)
    np.testing.assert_array_equal(
        got.departure_observed, ref.departure_observed
    )
    for q in range(got.skeleton.n_queues):
        np.testing.assert_array_equal(
            got.skeleton.queue_order(q), ref.skeleton.queue_order(q)
        )


def test_million_record_stream_stays_flat_and_bounded():
    stream = LiveTraceStream(n_queues=3, retain=RETAIN)
    n_batches = N_TASKS // BATCH
    assert n_batches >= 20, "set REPRO_SOAK_TASKS to at least 20000"
    sample_every = max(10, n_batches // 4)
    batch_seconds = []
    snapshot_sizes = []
    recent_polled: list[tuple[int, float]] = []
    t = 0.0
    for b in range(n_batches):
        records = make_batch(b * BATCH, t)
        start = time.perf_counter()
        stream.ingest(records)
        t += BATCH * DT
        stream.advance_watermark(t)
        polled = stream.poll(t)
        stream.trace  # the per-window assembly access
        stream.compact()
        batch_seconds.append(time.perf_counter() - start)
        recent_polled = (recent_polled + polled)[-200:]
        if (b + 1) % sample_every == 0:
            snapshot_sizes.append(
                len(pickle.dumps(stream.snapshot_state()))
            )
            # Bitwise windows: a recent window subset from the live
            # incremental assembly vs. the sort-based rebuild path.
            tasks = [
                task for task, _ in recent_polled
                if task in stream._final_records
            ]
            assert len(tasks) >= 100  # recency keeps them retained
            got = stream.subset(tasks)
            oracle = assemble_trace(
                list(stream._final_records.values()), n_queues=3
            )
            assert_window_bitwise(got, subset_trace(oracle, tasks))
    # Flat latency: the steady-state tail is no slower than the early
    # (post-warmup) batches — an O(history) regression would make the
    # tail grow with every batch, far past any constant factor.
    warm = batch_seconds[max(2, n_batches // 10): n_batches // 4]
    tail = batch_seconds[-(n_batches // 4):]
    assert float(np.median(tail)) < 4.0 * float(np.median(warm))
    # Bounded memory: every container plateaus near the horizon size.
    horizon_tasks = RETAIN / DT + BATCH
    stats = stream.memory_stats()
    assert stats["buffered_records"] == 0
    assert stats["retained_tasks"] <= 2 * horizon_tasks
    assert stats["retained_events"] <= 6 * horizon_tasks
    assert stats["reveal_positions"] <= 2 * horizon_tasks
    assert stats["ready_entries"] <= 2 * horizon_tasks
    assert stats["slot_entries"] <= 2 * horizon_tasks
    assert stats["resolved_slots"] <= 2 * horizon_tasks
    assert n_batches * BATCH - stream.n_compacted_tasks <= 2 * horizon_tasks
    # Bounded checkpoints: snapshot size plateaued, not grew with age.
    assert snapshot_sizes[-1] < 1.5 * snapshot_sizes[0]
