"""Tests for the estimation supervisor (repro.live.service)."""

import threading
import time

import numpy as np
import pytest

from repro.errors import IngestError
from repro.live import (
    EstimatorService,
    LiveTraceStream,
    estimate_to_record,
    replay_batches,
    trace_to_records,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import SMCEstimator, StreamingEstimator
from repro.simulate import simulate_network


def make_trace(n_tasks=250, seed=11, fraction=0.3):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=1)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def make_estimator(stream, horizon, windows=5, **kwargs):
    kwargs.setdefault("stem_iterations", 8)
    kwargs.setdefault("random_state", 5)
    return StreamingEstimator(stream, window=horizon / windows, **kwargs)


def wait_finished(service, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = service.health()["status"]
        if status in ("finished", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"service never drained: {service.health()}")


def assert_windows_equal(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert (a.t_start, a.t_end) == (b.t_start, b.t_end)
        assert (a.n_tasks, a.n_observed_tasks) == (b.n_tasks, b.n_observed_tasks)
        if a.rates is None:
            assert b.rates is None
        else:
            np.testing.assert_array_equal(a.rates, b.rates)


class TestSupervisor:
    def test_windows_publish_incrementally_before_seal(self):
        """The service must not wait for end-of-input: windows whose task
        population is final are estimated while ingestion continues."""
        trace, horizon = make_trace()
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service = EstimatorService(
            make_estimator(stream, horizon, windows=5), poll_interval=0.02
        )
        published_before_seal = 0
        with service.start():
            for watermark, batch in replay_batches(trace, batch_tasks=16):
                stream.advance_watermark(watermark)
                stream.ingest(batch)
                published_before_seal = max(
                    published_before_seal, len(service.windows())
                )
                time.sleep(0.005)  # let the supervisor interleave
            deadline = time.time() + 30.0
            while time.time() < deadline and not service.windows():
                time.sleep(0.02)
            published_before_seal = max(
                published_before_seal, len(service.windows())
            )
            stream.seal()
            assert wait_finished(service) == "finished"
            total = len(service.windows())
        assert published_before_seal >= 1
        assert total > published_before_seal  # the tail needed the seal

    def test_live_service_matches_offline_streaming_run_bitwise(self):
        trace, horizon = make_trace()
        offline_stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        offline_stream.ingest(trace_to_records(trace))
        offline_stream.seal()
        ref = make_estimator(offline_stream, horizon).run()
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service = EstimatorService(
            make_estimator(stream, horizon), poll_interval=0.02
        )
        with service.start():
            for watermark, batch in replay_batches(trace):
                stream.advance_watermark(watermark)
                stream.ingest(batch)
            stream.seal()
            assert wait_finished(service) == "finished"
            got = service.windows()
        assert_windows_equal(ref, got)

    def test_estimator_failures_surface_in_health(self):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        estimator = make_estimator(stream, horizon, windows=2)
        estimator.process_window = lambda t0: (_ for _ in ()).throw(
            ValueError("boom")
        )
        service = EstimatorService(estimator, poll_interval=0.02)
        with service.start():
            stream.ingest(trace_to_records(trace))
            stream.seal()
            assert wait_finished(service) == "failed"
            health = service.health()
        assert "boom" in health["error"]

    def test_validation_and_estimate_records(self):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        estimator = make_estimator(stream, horizon, windows=1)
        with pytest.raises(IngestError, match="checkpoint_every"):
            EstimatorService(estimator, checkpoint_every=0)
        service = EstimatorService(estimator, poll_interval=0.02)
        with service.start():
            stream.ingest(trace_to_records(trace))
            stream.seal()
            assert wait_finished(service) == "finished"
            windows = service.windows()
            records = service.estimates()
        record = estimate_to_record(windows[0], 0)
        assert record["index"] == 0
        assert record["n_tasks"] == windows[0].n_tasks
        assert records[0]["rates"] == pytest.approx(list(windows[0].rates))
        assert records[0]["anomalous_queues"] == []

    def test_replay_only_streams_refuse_ingestion_commands(self):
        from repro.online import ReplayTraceStream

        trace, horizon = make_trace(n_tasks=80)
        service = EstimatorService(
            make_estimator(ReplayTraceStream(trace), horizon, windows=1)
        )
        with pytest.raises(IngestError, match="does not accept ingestion"):
            service.ingest([])
        with pytest.raises(IngestError, match="no watermark"):
            service.advance_watermark(1.0)
        with pytest.raises(IngestError, match="cannot be sealed"):
            service.seal()

    def test_service_over_a_replay_stream_finishes(self):
        """Regression: a stream without a seal notion is always-sealed —
        the service must drain its grid and reach 'finished', not spin in
        'serving' forever."""
        from repro.online import ReplayTraceStream

        trace, horizon = make_trace(n_tasks=80)
        service = EstimatorService(
            make_estimator(ReplayTraceStream(trace), horizon, windows=2),
            poll_interval=0.02,
        )
        with service.start():
            assert wait_finished(service, timeout=60.0) == "finished"
            assert len(service.windows()) == 2


class TestCheckpointRestore:
    """Acceptance: checkpoint -> restart -> resume reproduces frozen-window
    estimates bitwise, replaying only the tail."""

    def test_resumed_service_is_bitwise_the_uninterrupted_run(self, tmp_path):
        trace, horizon = make_trace()
        batches = replay_batches(trace, batch_tasks=8)
        # Uninterrupted reference over the identical record stream.
        ref_stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        ref_stream.ingest(trace_to_records(trace))
        ref_stream.seal()
        ref = make_estimator(
            ref_stream, horizon, shards=2, shard_workers=2,
            repartition="incremental",
        ).run()
        assert sum(w.ok for w in ref) >= 3
        # Interrupted run: ingest 60%, let some windows publish, "crash".
        ckpt = str(tmp_path / "service.ckpt")
        stream1 = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service1 = EstimatorService(
            make_estimator(
                stream1, horizon, shards=2, shard_workers=2,
                repartition="incremental",
            ),
            checkpoint_path=ckpt, poll_interval=0.02,
        )
        cut = int(len(batches) * 0.6)
        with service1.start():
            for watermark, batch in batches[:cut]:
                stream1.advance_watermark(watermark)
                stream1.ingest(batch)
            deadline = time.time() + 60.0
            while time.time() < deadline and len(service1.windows()) < 1:
                time.sleep(0.02)
        pre_crash = service1.windows()
        assert len(pre_crash) >= 1
        # Restore and replay only the tail (overlapping the cut, as an
        # at-least-once client would; duplicates are ignored).
        service2 = EstimatorService.from_checkpoint(ckpt)
        stream2 = service2.stream
        assert len(service2.windows()) == len(pre_crash)
        with service2.start():
            for watermark, batch in batches[max(cut - 3, 0):]:
                stream2.advance_watermark(watermark)
                stream2.ingest(batch)
            stream2.seal()
            assert wait_finished(service2) == "finished"
            resumed = service2.windows()
        assert stream2.n_duplicates > 0  # the overlap really was replayed
        # Pre-crash windows survived the restart bitwise, and the resumed
        # tail is exactly what the uninterrupted run produced.
        assert_windows_equal(pre_crash, resumed[: len(pre_crash)])
        assert_windows_equal(ref, resumed)

    def test_restore_rejects_unknown_versions(self, tmp_path):
        import pickle

        path = tmp_path / "bad.ckpt"
        path.write_bytes(pickle.dumps({"version": 99}))
        with pytest.raises(IngestError, match="checkpoint version"):
            EstimatorService.from_checkpoint(str(path))

    def test_checkpoint_is_skipped_without_a_path(self):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service = EstimatorService(
            make_estimator(stream, horizon, windows=1), poll_interval=0.02
        )
        service.checkpoint()  # no path: a no-op, not an error


class TestQueryValidation:
    def test_estimates_rejects_negative_since(self):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service = EstimatorService(make_estimator(stream, horizon, windows=1))
        with pytest.raises(IngestError, match="nonnegative"):
            service.estimates(since=-1)
        assert service.estimates(since=0) == []

    def test_estimates_since_keeps_absolute_indices(self):
        trace, horizon = make_trace(n_tasks=120)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service = EstimatorService(
            make_estimator(stream, horizon, windows=3), poll_interval=0.02
        )
        with service.start():
            stream.ingest(trace_to_records(trace))
            stream.seal()
            assert wait_finished(service) == "finished"
            total = len(service.estimates())
            tail = service.estimates(since=1)
        assert total >= 2
        assert len(tail) == total - 1
        assert [r["index"] for r in tail] == list(range(1, total))


class TestCheckpointOffloading:
    """The checkpoint bugfix: snapshot capture happens under the window
    lock, but serialization + disk I/O must not stall publishing."""

    def test_publishing_proceeds_during_a_slow_checkpoint_write(self, tmp_path):
        trace, horizon = make_trace()
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        stream.ingest(trace_to_records(trace))
        stream.seal()
        path = tmp_path / "slow.ckpt"
        service = EstimatorService(
            make_estimator(stream, horizon, windows=5),
            checkpoint_path=str(path), poll_interval=0.01,
        )
        gate = threading.Event()
        original = service._write_snapshot

        def slow_write(seq, snapshot):
            gate.wait(60.0)
            original(seq, snapshot)

        service._write_snapshot = slow_write
        try:
            with service.start():
                # With checkpoint_every=1 the writer blocks on the first
                # window's snapshot; later windows must keep publishing.
                deadline = time.time() + 60.0
                while time.time() < deadline and len(service.windows()) < 3:
                    time.sleep(0.01)
                published_while_blocked = len(service.windows())
                gate.set()
                assert wait_finished(service) == "finished"
        finally:
            gate.set()
        assert published_while_blocked >= 3
        assert path.exists()  # the final (released) snapshot landed

    def test_stale_snapshots_never_clobber_newer_ones(self, tmp_path):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        stream.ingest(trace_to_records(trace))
        stream.seal()
        path = tmp_path / "ordered.ckpt"
        service = EstimatorService(
            make_estimator(stream, horizon, windows=1),
            checkpoint_path=str(path),
        )
        old_seq, old_snap = service._build_snapshot()
        new_seq, new_snap = service._build_snapshot()
        service._write_snapshot(new_seq, new_snap)
        written = path.read_bytes()
        service._write_snapshot(old_seq, old_snap)  # stale: dropped
        assert path.read_bytes() == written
        assert service.last_checkpoint_bytes == len(written)

    def test_background_write_failures_surface_in_health(self, tmp_path):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        stream.ingest(trace_to_records(trace))
        stream.seal()
        service = EstimatorService(
            make_estimator(stream, horizon, windows=1),
            checkpoint_path=str(tmp_path / "boom.ckpt"),
        )

        def boom(seq, snapshot):
            raise OSError("disk full")

        service._write_snapshot = boom
        assert service.health()["checkpoint_error"] is None
        service._checkpoint_now(wait=False)
        deadline = time.time() + 10.0
        while (
            time.time() < deadline
            and service.health()["checkpoint_error"] is None
        ):
            time.sleep(0.01)
        assert "disk full" in service.health()["checkpoint_error"]
        service.stop()


class TestRetentionBoundsCheckpoints:
    def test_retention_bounds_checkpoint_size(self, tmp_path):
        """With a retain horizon the snapshot's record log is the tail
        the estimator can still reach, so the final checkpoint of a long
        stream is a fraction of the full-history one."""
        trace, horizon = make_trace(n_tasks=500)

        def run(retain, name):
            stream = LiveTraceStream(
                n_queues=trace.skeleton.n_queues, retain=retain
            )
            stream.ingest(trace_to_records(trace))
            stream.seal()
            # A huge min_observed skips STEM per window: this test is
            # about checkpoint size, not estimation.
            service = EstimatorService(
                make_estimator(
                    stream, horizon, windows=10,
                    min_observed_tasks=10**9,
                ),
                checkpoint_path=str(tmp_path / name), poll_interval=0.01,
            )
            with service.start():
                assert wait_finished(service) == "finished"
            return service

        plain = run(None, "plain.ckpt")
        bounded = run(horizon / 10, "bounded.ckpt")
        assert bounded.stream.n_compacted_tasks > 0
        assert bounded.last_checkpoint_bytes < plain.last_checkpoint_bytes / 2
        health = bounded.health()
        assert health["checkpoint_bytes"] == bounded.last_checkpoint_bytes
        assert health["n_compacted_tasks"] == bounded.stream.n_compacted_tasks

    def test_restore_continues_a_compacted_service_bitwise(self, tmp_path):
        """Checkpoint -> restore across a compaction boundary: the
        resumed tail matches the uninterrupted compacting run bitwise."""
        trace, horizon = make_trace()
        batches = replay_batches(trace, batch_tasks=8)
        retain = horizon / 4

        def fresh_stream():
            return LiveTraceStream(
                n_queues=trace.skeleton.n_queues, retain=retain
            )

        ref_stream = fresh_stream()
        ref_stream.ingest(trace_to_records(trace))
        ref_stream.seal()
        ref = make_estimator(ref_stream, horizon).run()
        assert sum(w.ok for w in ref) >= 3
        ckpt = str(tmp_path / "compacted.ckpt")
        stream1 = fresh_stream()
        service1 = EstimatorService(
            make_estimator(stream1, horizon),
            checkpoint_path=ckpt, poll_interval=0.02,
        )
        cut = int(len(batches) * 0.6)
        with service1.start():
            for watermark, batch in batches[:cut]:
                stream1.advance_watermark(watermark)
                stream1.ingest(batch)
            deadline = time.time() + 60.0
            while time.time() < deadline and len(service1.windows()) < 2:
                time.sleep(0.02)
        pre_crash = service1.windows()
        assert len(pre_crash) >= 2
        service2 = EstimatorService.from_checkpoint(ckpt)
        stream2 = service2.stream
        assert stream2.retain == retain
        with service2.start():
            for watermark, batch in batches[max(cut - 3, 0):]:
                stream2.advance_watermark(watermark)
                stream2.ingest(batch)
            stream2.seal()
            assert wait_finished(service2) == "finished"
            resumed = service2.windows()
        assert_windows_equal(pre_crash, resumed[: len(pre_crash)])
        assert_windows_equal(ref, resumed)


class TestSMCBehindTheService:
    """Acceptance: the SMC estimator rides behind the service, the TCP
    server, and checkpoint/restore with no wire-protocol change."""

    @staticmethod
    def make_smc(stream, horizon, windows=4, **kwargs):
        kwargs.setdefault("stem_iterations", 8)
        kwargs.setdefault("n_particles", 8)
        kwargs.setdefault("random_state", 5)
        return SMCEstimator(stream, window=horizon / windows, **kwargs)

    def test_smc_over_live_tcp_matches_offline_run_bitwise(self):
        from repro.live import LiveClient, LiveServer

        trace, horizon = make_trace()
        offline_stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        offline_stream.ingest(trace_to_records(trace))
        offline_stream.seal()
        ref = self.make_smc(offline_stream, horizon).run()
        assert sum(w.ok for w in ref) >= 2
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service = EstimatorService(
            self.make_smc(stream, horizon), poll_interval=0.02
        )
        with service, LiveServer(service, authkey=b"smc-key") as server:
            with LiveClient(server.address, authkey=b"smc-key") as client:
                for watermark, batch in replay_batches(trace):
                    client.advance_watermark(watermark)
                    client.ingest(batch)
                client.seal()
                deadline = time.time() + 120.0
                while time.time() < deadline:
                    health = client.health()
                    if health["status"] in ("finished", "failed"):
                        break
                    time.sleep(0.02)
                assert health["status"] == "finished", health["error"]
                published = client.estimates()
        assert len(published) == len(ref)
        for a, b in zip(ref, published):
            assert (a.t_start, a.t_end) == (b["t_start"], b["t_end"])
            if a.rates is None:
                assert b["rates"] is None
            else:
                np.testing.assert_array_equal(
                    np.asarray(a.rates), np.asarray(b["rates"])
                )

    def test_smc_checkpoint_restore_dispatches_by_name(self, tmp_path):
        trace, horizon = make_trace()
        batches = replay_batches(trace, batch_tasks=8)
        ref_stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        ref_stream.ingest(trace_to_records(trace))
        ref_stream.seal()
        ref = self.make_smc(ref_stream, horizon).run()
        ckpt = str(tmp_path / "smc.ckpt")
        stream1 = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        service1 = EstimatorService(
            self.make_smc(stream1, horizon),
            checkpoint_path=ckpt, poll_interval=0.02,
        )
        cut = int(len(batches) * 0.6)
        with service1.start():
            for watermark, batch in batches[:cut]:
                stream1.advance_watermark(watermark)
                stream1.ingest(batch)
            deadline = time.time() + 60.0
            while time.time() < deadline and len(service1.windows()) < 1:
                time.sleep(0.02)
        pre_crash = service1.windows()
        assert len(pre_crash) >= 1
        # The checkpoint names its estimator; restore must rebuild the
        # SMC flavor without being told.
        service2 = EstimatorService.from_checkpoint(ckpt)
        assert isinstance(service2.estimator, SMCEstimator)
        stream2 = service2.stream
        with service2.start():
            for watermark, batch in batches[max(cut - 3, 0):]:
                stream2.advance_watermark(watermark)
                stream2.ingest(batch)
            stream2.seal()
            assert wait_finished(service2) == "finished"
            resumed = service2.windows()
        assert stream2.n_duplicates > 0
        assert_windows_equal(pre_crash, resumed[: len(pre_crash)])
        assert_windows_equal(ref, resumed)
