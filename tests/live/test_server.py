"""Tests for the live ingestion/query server (repro.live.server)."""

import socket
import time

import numpy as np
import pytest

from repro.errors import IngestError
from repro.live import (
    EstimatorService,
    LiveClient,
    LiveServer,
    LiveTraceStream,
    replay_batches,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import StreamingEstimator, WindowedEstimator
from repro.simulate import simulate_network


def make_trace(n_tasks=150, seed=3, fraction=0.3):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=1)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def make_service(trace, horizon, windows=3, **est_kwargs):
    stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
    estimator = StreamingEstimator(
        stream, window=horizon / windows, stem_iterations=8, random_state=5,
        **est_kwargs,
    )
    return EstimatorService(estimator, poll_interval=0.02)


def wait_until(client, statuses=("finished", "failed"), timeout=90.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        health = client.health()
        if health["status"] in statuses:
            return health
        time.sleep(0.02)
    raise AssertionError(f"service never reached {statuses}: {client.health()}")


class TestServerSmoke:
    def test_live_server_smoke_bitwise_vs_replay(self):
        """The CI smoke: start a server, ingest a short trace over the
        wire, and the published windows match the replay/windowed path
        bitwise at the same seed."""
        trace, horizon = make_trace()
        ref = WindowedEstimator(
            trace, window=horizon / 3, stem_iterations=8, random_state=5
        ).run()
        service = make_service(trace, horizon, windows=3)
        with service, LiveServer(service, authkey=b"smoke-key") as server:
            client = LiveClient(server.address, authkey=b"smoke-key")
            with client:
                for watermark, batch in replay_batches(trace):
                    client.advance_watermark(watermark)
                    client.ingest(batch)
                client.seal()
                health = wait_until(client)
                assert health["status"] == "finished", health["error"]
                published = client.estimates()
        assert len(published) == len(ref)
        assert any(w["rates"] is not None for w in published)
        for a, b in zip(ref, published):
            assert (a.t_start, a.t_end) == (b["t_start"], b["t_end"])
            assert a.n_tasks == b["n_tasks"]
            if a.rates is None:
                assert b["rates"] is None
            else:
                np.testing.assert_array_equal(
                    np.asarray(a.rates), np.asarray(b["rates"])
                )

    def test_health_and_estimates_since(self):
        trace, horizon = make_trace(n_tasks=100)
        service = make_service(trace, horizon, windows=2)
        with service, LiveServer(service, authkey=b"k") as server:
            with LiveClient(server.address, authkey=b"k") as client:
                health = client.health()
                assert health["status"] == "serving"
                assert health["sealed"] is False
                assert health["windows_published"] == 0
                for watermark, batch in replay_batches(trace):
                    client.advance_watermark(watermark)
                    client.ingest(batch)
                client.seal()
                health = wait_until(client)
                assert health["n_admitted"] == trace.skeleton.n_events
                assert health["sealed"] is True
                all_of_them = client.estimates()
                tail = client.estimates(since=1)
                assert all_of_them[1:] == tail
                assert client.anomalies() == []  # healthy two-window trace

    def test_multiple_clients_share_one_stream(self):
        trace, horizon = make_trace(n_tasks=100)
        service = make_service(trace, horizon, windows=2)
        batches = replay_batches(trace, batch_tasks=8)
        with service, LiveServer(service, authkey=b"k") as server:
            a = LiveClient(server.address, authkey=b"k")
            b = LiveClient(server.address, authkey=b"k")
            with a, b:
                for i, (watermark, batch) in enumerate(batches):
                    sender = a if i % 2 == 0 else b
                    sender.advance_watermark(watermark)
                    sender.ingest(batch)
                a.seal()
                health = wait_until(b)
                assert health["status"] == "finished", health["error"]
                assert health["n_admitted"] == trace.skeleton.n_events


class TestProtocolErrors:
    def test_wrong_authkey_raises_clearly_on_the_client(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"right") as server:
            with pytest.raises(IngestError, match="wrong authkey|handshake"):
                LiveClient(server.address, authkey=b"wrong")
            deadline = time.time() + 5.0
            while server.n_rejected == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert server.n_rejected == 1
            # The real client still gets through afterwards.
            with LiveClient(server.address, authkey=b"right") as client:
                assert client.health()["status"] == "serving"

    def test_truncated_hello_is_rejected_without_wedging(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"k") as server:
            sock = socket.create_connection(server.address)
            sock.recv(64)      # server nonce
            sock.sendall(b"\x00" * 7)  # truncated digest+nonce
            sock.close()
            deadline = time.time() + 5.0
            while server.n_rejected == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert server.n_rejected == 1
            with LiveClient(server.address, authkey=b"k") as client:
                assert client.health()["status"] == "serving"

    def test_unknown_command_and_bad_arguments_get_error_replies(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"k") as server:
            with LiveClient(server.address, authkey=b"k") as client:
                with pytest.raises(IngestError, match="unknown command"):
                    client._call("frobnicate")
                with pytest.raises(IngestError, match="bad arguments"):
                    client._call("estimates", "not-an-int", 2, 3)
                # Unconvertible values get an error reply, not a dead
                # handler thread.
                with pytest.raises(IngestError, match="bad arguments"):
                    client._call("watermark", "not-a-time")
                with pytest.raises(IngestError, match="bad arguments"):
                    client._call("estimates", "x")
                # The connection survives error replies.
                assert client.health()["status"] == "serving"

    def test_backpressure_surfaces_as_an_error_reply(self):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues, max_pending=10)
        estimator = StreamingEstimator(
            stream, window=horizon, stem_iterations=5, random_state=0
        )
        service = EstimatorService(estimator, poll_interval=0.02)
        from repro.live import trace_to_records

        # Withhold seq-0 records: nothing can assemble, the buffer fills.
        stuck = [r for r in trace_to_records(trace) if r["seq"] != 0]
        with service, LiveServer(service, authkey=b"k") as server:
            with LiveClient(server.address, authkey=b"k") as client:
                with pytest.raises(IngestError, match="backpressure"):
                    client.ingest(stuck)
                assert client.health()["n_pending"] == 10

    def test_internal_error_gets_error_reply_not_dead_thread(self):
        """Regression: a service method raising something unexpected used
        to unwind the handler thread, leaving the client wedged in recv()
        forever.  It must come back as an ``("error", ...)`` reply, be
        counted, and leave the connection usable."""
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"k") as server:
            with LiveClient(server.address, authkey=b"k") as client:
                def boom():
                    raise RuntimeError("wires crossed")
                service.anomalies = boom
                with pytest.raises(
                    IngestError, match="internal error.*RuntimeError"
                ):
                    client.anomalies()
                assert server.n_dispatch_errors == 1
                assert "RuntimeError: wires crossed" in server.last_dispatch_error
                # The connection survives, and health surfaces the tally
                # to a monitoring consumer with no server-side log.
                health = client.health()
                assert health["status"] == "serving"
                assert health["server"]["n_dispatch_errors"] == 1
                assert "RuntimeError" in health["server"]["last_dispatch_error"]

    def test_close_returns_promptly_with_idle_connected_client(self):
        """Regression: server shutdown used to wait out a 5s join per
        handler thread blocked in recv() on an idle connection, because a
        bare close() does not wake a reader on Linux.  The SHUT_RDWR in
        SocketEndpoint.close() must make close() prompt."""
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service:
            server = LiveServer(service, authkey=b"k").start()
            client = LiveClient(server.address, authkey=b"k")
            assert client.health()["status"] == "serving"
            t0 = time.monotonic()
            server.close()
            assert time.monotonic() - t0 < 4.0
            # The idle client sees the hangup as a clean IngestError ...
            with pytest.raises(IngestError, match="lost"):
                client.health()
            # ... and stays dead instead of desyncing on a retry.
            assert client.dead is not None
            client.close()

    def test_malformed_reply_kills_the_client_fast(self):
        """Regression: a reply that is not a (status, payload) pair used
        to crash the unpacking *outside* any protocol handling, leaving
        the connection half-desynced for the next call.  The client must
        raise IngestError, mark itself dead, and fail every later call
        fast without touching the wire."""
        import threading

        from repro.inference.transport import (
            SocketEndpoint,
            _master_handshake,
        )

        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()[:2]

        def crooked_server():
            conn, _ = listener.accept()
            assert _master_handshake(conn, b"k")
            endpoint = SocketEndpoint(conn)
            endpoint.recv()
            endpoint.send("definitely-not-a-pair")
            try:
                endpoint.recv()  # nothing else must arrive
            except (EOFError, OSError):
                pass
            endpoint.close()

        thread = threading.Thread(target=crooked_server, daemon=True)
        thread.start()
        try:
            client = LiveClient(address, authkey=b"k")
            with pytest.raises(IngestError, match="malformed reply"):
                client.health()
            assert "malformed" in client.dead
            # Later calls fail fast — no frame crosses the dead socket.
            with pytest.raises(IngestError, match="dead"):
                client.ingest([])
            thread.join(10.0)
            assert not thread.is_alive()
            client.close()
        finally:
            listener.close()

    def test_shutdown_command_wakes_the_serve_loop(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"k") as server:
            assert not server.wait_for_shutdown(timeout=0.0)
            with LiveClient(server.address, authkey=b"k") as client:
                client.shutdown()
            assert server.wait_for_shutdown(timeout=5.0)
