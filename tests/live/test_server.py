"""Tests for the live ingestion/query server (repro.live.server)."""

import socket
import time

import numpy as np
import pytest

from repro.errors import IngestError
from repro.live import (
    EstimatorService,
    LiveClient,
    LiveServer,
    LiveTraceStream,
    replay_batches,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import StreamingEstimator, WindowedEstimator
from repro.simulate import simulate_network


def make_trace(n_tasks=150, seed=3, fraction=0.3):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=1)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def make_service(trace, horizon, windows=3, **est_kwargs):
    stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
    estimator = StreamingEstimator(
        stream, window=horizon / windows, stem_iterations=8, random_state=5,
        **est_kwargs,
    )
    return EstimatorService(estimator, poll_interval=0.02)


def wait_until(client, statuses=("finished", "failed"), timeout=90.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        health = client.health()
        if health["status"] in statuses:
            return health
        time.sleep(0.02)
    raise AssertionError(f"service never reached {statuses}: {client.health()}")


class TestServerSmoke:
    def test_live_server_smoke_bitwise_vs_replay(self):
        """The CI smoke: start a server, ingest a short trace over the
        wire, and the published windows match the replay/windowed path
        bitwise at the same seed."""
        trace, horizon = make_trace()
        ref = WindowedEstimator(
            trace, window=horizon / 3, stem_iterations=8, random_state=5
        ).run()
        service = make_service(trace, horizon, windows=3)
        with service, LiveServer(service, authkey=b"smoke-key") as server:
            client = LiveClient(server.address, authkey=b"smoke-key")
            with client:
                for watermark, batch in replay_batches(trace):
                    client.advance_watermark(watermark)
                    client.ingest(batch)
                client.seal()
                health = wait_until(client)
                assert health["status"] == "finished", health["error"]
                published = client.estimates()
        assert len(published) == len(ref)
        assert any(w["rates"] is not None for w in published)
        for a, b in zip(ref, published):
            assert (a.t_start, a.t_end) == (b["t_start"], b["t_end"])
            assert a.n_tasks == b["n_tasks"]
            if a.rates is None:
                assert b["rates"] is None
            else:
                np.testing.assert_array_equal(
                    np.asarray(a.rates), np.asarray(b["rates"])
                )

    def test_health_and_estimates_since(self):
        trace, horizon = make_trace(n_tasks=100)
        service = make_service(trace, horizon, windows=2)
        with service, LiveServer(service, authkey=b"k") as server:
            with LiveClient(server.address, authkey=b"k") as client:
                health = client.health()
                assert health["status"] == "serving"
                assert health["sealed"] is False
                assert health["windows_published"] == 0
                for watermark, batch in replay_batches(trace):
                    client.advance_watermark(watermark)
                    client.ingest(batch)
                client.seal()
                health = wait_until(client)
                assert health["n_admitted"] == trace.skeleton.n_events
                assert health["sealed"] is True
                all_of_them = client.estimates()
                tail = client.estimates(since=1)
                assert all_of_them[1:] == tail
                assert client.anomalies() == []  # healthy two-window trace

    def test_multiple_clients_share_one_stream(self):
        trace, horizon = make_trace(n_tasks=100)
        service = make_service(trace, horizon, windows=2)
        batches = replay_batches(trace, batch_tasks=8)
        with service, LiveServer(service, authkey=b"k") as server:
            a = LiveClient(server.address, authkey=b"k")
            b = LiveClient(server.address, authkey=b"k")
            with a, b:
                for i, (watermark, batch) in enumerate(batches):
                    sender = a if i % 2 == 0 else b
                    sender.advance_watermark(watermark)
                    sender.ingest(batch)
                a.seal()
                health = wait_until(b)
                assert health["status"] == "finished", health["error"]
                assert health["n_admitted"] == trace.skeleton.n_events


class TestProtocolErrors:
    def test_wrong_authkey_raises_clearly_on_the_client(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"right") as server:
            with pytest.raises(IngestError, match="wrong authkey|handshake"):
                LiveClient(server.address, authkey=b"wrong")
            deadline = time.time() + 5.0
            while server.n_rejected == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert server.n_rejected == 1
            # The real client still gets through afterwards.
            with LiveClient(server.address, authkey=b"right") as client:
                assert client.health()["status"] == "serving"

    def test_truncated_hello_is_rejected_without_wedging(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"k") as server:
            sock = socket.create_connection(server.address)
            sock.recv(64)      # server nonce
            sock.sendall(b"\x00" * 7)  # truncated digest+nonce
            sock.close()
            deadline = time.time() + 5.0
            while server.n_rejected == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert server.n_rejected == 1
            with LiveClient(server.address, authkey=b"k") as client:
                assert client.health()["status"] == "serving"

    def test_unknown_command_and_bad_arguments_get_error_replies(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"k") as server:
            with LiveClient(server.address, authkey=b"k") as client:
                with pytest.raises(IngestError, match="unknown command"):
                    client._call("frobnicate")
                with pytest.raises(IngestError, match="bad arguments"):
                    client._call("estimates", "not-an-int", 2, 3)
                # Unconvertible values get an error reply, not a dead
                # handler thread.
                with pytest.raises(IngestError, match="bad arguments"):
                    client._call("watermark", "not-a-time")
                with pytest.raises(IngestError, match="bad arguments"):
                    client._call("estimates", "x")
                # The connection survives error replies.
                assert client.health()["status"] == "serving"

    def test_backpressure_surfaces_as_an_error_reply(self):
        trace, horizon = make_trace(n_tasks=80)
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues, max_pending=10)
        estimator = StreamingEstimator(
            stream, window=horizon, stem_iterations=5, random_state=0
        )
        service = EstimatorService(estimator, poll_interval=0.02)
        from repro.live import trace_to_records

        # Withhold seq-0 records: nothing can assemble, the buffer fills.
        stuck = [r for r in trace_to_records(trace) if r["seq"] != 0]
        with service, LiveServer(service, authkey=b"k") as server:
            with LiveClient(server.address, authkey=b"k") as client:
                with pytest.raises(IngestError, match="backpressure"):
                    client.ingest(stuck)
                assert client.health()["n_pending"] == 10

    def test_shutdown_command_wakes_the_serve_loop(self):
        trace, horizon = make_trace(n_tasks=60)
        service = make_service(trace, horizon)
        with service, LiveServer(service, authkey=b"k") as server:
            assert not server.wait_for_shutdown(timeout=0.0)
            with LiveClient(server.address, authkey=b"k") as client:
                client.shutdown()
            assert server.wait_for_shutdown(timeout=5.0)
