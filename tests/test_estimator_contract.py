"""Cross-estimator contract tests.

Every estimator registered in :data:`repro.online.ESTIMATORS` must honor
the same surface: one shared ``EstimatorConfig``, protocol-shaped
instances, name-dispatched checkpoints that restore bitwise, and window
posteriors that agree statistically with the windowed StEM reference.
The SMC-specific mechanics (systematic resampling, ESS trigger) get
property-based coverage of their own.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.errors import InferenceError
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import (
    ESTIMATORS,
    EstimatorConfig,
    ReplayTraceStream,
    SMCEstimator,
    StreamEstimatorProtocol,
    StreamingEstimator,
    estimator_config_keys,
    get_estimator,
    register_estimator,
    systematic_resample,
)
from repro.online.smc import effective_sample_size
from repro.simulate import simulate_network
from repro.webapp import WebAppConfig, generate_webapp_trace

ESTIMATOR_NAMES = ["stem", "smc"]


def make_trace(n_tasks=300, seed=11, fraction=0.25, obs_seed=1):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=obs_seed)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def build(name, trace, horizon, *, windows=4, seed=7, **overrides):
    kwargs = dict(
        window=horizon / windows, stem_iterations=6, n_particles=8,
    )
    kwargs.update(overrides)
    config = EstimatorConfig(**kwargs)
    return get_estimator(name)(
        ReplayTraceStream(trace), random_state=seed, config=config
    )


def assert_windows_equal(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert (a.t_start, a.t_end) == (b.t_start, b.t_end)
        assert (a.n_tasks, a.n_observed_tasks) == (b.n_tasks, b.n_observed_tasks)
        assert a.failure == b.failure
        if a.rates is None:
            assert b.rates is None
        else:
            np.testing.assert_array_equal(a.rates, b.rates)


class TestRegistryAndProtocol:
    def test_both_flavors_registered(self):
        assert ESTIMATORS["stem"] is StreamingEstimator
        assert ESTIMATORS["smc"] is SMCEstimator
        assert get_estimator("stem") is StreamingEstimator
        assert get_estimator("smc") is SMCEstimator

    def test_unknown_name_is_an_inference_error(self):
        with pytest.raises(InferenceError, match="unknown estimator"):
            get_estimator("kalman")

    def test_register_returns_class_for_decorator_use(self):
        class Fake:
            estimator_name = "_contract_fake"

        try:
            assert register_estimator(Fake) is Fake
            assert get_estimator("_contract_fake") is Fake
        finally:
            del ESTIMATORS["_contract_fake"]

    @pytest.mark.parametrize("name", ESTIMATOR_NAMES)
    def test_instances_satisfy_the_protocol(self, name):
        trace, horizon = make_trace(n_tasks=80)
        est = build(name, trace, horizon)
        try:
            assert isinstance(est, StreamEstimatorProtocol)
            assert est.estimator_name == name
            assert type(est) is ESTIMATORS[name]
        finally:
            est.close()


class TestEstimatorConfig:
    def test_field_validation(self):
        with pytest.raises(InferenceError, match="worker_retries"):
            EstimatorConfig(window=1.0, worker_retries=-1)
        with pytest.raises(InferenceError, match="two particles"):
            EstimatorConfig(window=1.0, n_particles=1)
        with pytest.raises(InferenceError, match="ess_threshold"):
            EstimatorConfig(window=1.0, ess_threshold=0.0)
        with pytest.raises(InferenceError, match="ess_threshold"):
            EstimatorConfig(window=1.0, ess_threshold=1.5)
        with pytest.raises(InferenceError, match="rejuvenation sweep"):
            EstimatorConfig(window=1.0, rejuvenation_sweeps=0)
        # Legacy validations stay word-for-word where tests pin them.
        with pytest.raises(InferenceError, match="kernel"):
            EstimatorConfig(window=1.0, kernel="simd")
        with pytest.raises(InferenceError, match="thread"):
            EstimatorConfig(window=1.0, threads=0)

    def test_from_state_fills_missing_fields_and_rejects_unknown(self):
        state = EstimatorConfig(window=2.0).as_dict()
        for skew in ("worker_retries", "n_particles", "ess_threshold",
                     "rejuvenation_sweeps", "kernel", "threads"):
            state.pop(skew)
        restored = EstimatorConfig.from_state(state)
        assert restored == EstimatorConfig(window=2.0)
        with pytest.raises(InferenceError, match="unknown"):
            EstimatorConfig.from_state({"window": 2.0, "particles": 8})

    def test_legacy_kwargs_and_config_build_identically(self):
        trace, horizon = make_trace(n_tasks=80)
        legacy = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon, stem_iterations=9,
            random_state=3, threads=2, worker_retries=2,
        )
        explicit = StreamingEstimator(
            ReplayTraceStream(trace), random_state=3,
            config=EstimatorConfig(
                window=horizon, stem_iterations=9, threads=2, worker_retries=2
            ),
        )
        assert legacy.config == explicit.config
        assert legacy.state_dict()["config"] == explicit.state_dict()["config"]

    def test_config_and_kwargs_are_exclusive(self):
        trace, horizon = make_trace(n_tasks=80)
        with pytest.raises(InferenceError, match="not both"):
            StreamingEstimator(
                ReplayTraceStream(trace), window=horizon,
                config=EstimatorConfig(window=horizon),
            )
        with pytest.raises(InferenceError, match="window= or config="):
            StreamingEstimator(ReplayTraceStream(trace))

    @pytest.mark.parametrize("name", ESTIMATOR_NAMES)
    def test_knobs_are_read_only_views_of_the_config(self, name):
        trace, horizon = make_trace(n_tasks=80)
        est = build(name, trace, horizon, threads=2)
        try:
            assert est.window == horizon / 4
            assert est.step == horizon / 4
            assert est.threads == 2
            assert est.n_particles == 8
            with pytest.raises(AttributeError):
                est.kernel = "object"
            # worker_retries is the one mutable knob, with validation.
            est.worker_retries = 0
            assert est.config.worker_retries == 0
            with pytest.raises(InferenceError, match="worker_retries"):
                est.worker_retries = -1
        finally:
            est.close()

    def test_config_keys_cover_every_dataclass_field(self):
        assert set(estimator_config_keys()) >= {
            "window", "step", "stem_iterations", "shards", "kernel",
            "threads", "worker_retries", "n_particles", "ess_threshold",
            "rejuvenation_sweeps",
        }


class TestCheckpointContract:
    @pytest.mark.parametrize("name", ESTIMATOR_NAMES)
    def test_checkpoint_restart_resume_is_bitwise(self, name):
        trace, horizon = make_trace(n_tasks=200)
        ref = build(name, trace, horizon, windows=4).run()
        assert any(w.rates is not None for w in ref)

        first = build(name, trace, horizon, windows=4)
        prefix = [first.process_window(float(i * first.step)) for i in range(2)]
        state = first.state_dict()
        first.close()
        assert state["estimator"] == name
        assert state["version"] == 2

        # A restart knows nothing but the checkpoint: class and config
        # both come from the state it carries.
        resumed = get_estimator(state["estimator"])(
            ReplayTraceStream(trace),
            config=EstimatorConfig.from_state(state["config"]),
        )
        resumed.load_state_dict(state)
        assert resumed.n_windows_done == 2
        # load_state_dict's contract: the stream must be positioned where
        # the snapshot left it (a live stream's own snapshot carries that;
        # a replay source is advanced by hand).  StEM tolerates a rewound
        # stream because re-revealed entries are idempotent bookkeeping,
        # but SMC's reweight consumes the poll *batch*, so the position is
        # part of the cross-estimator contract, not an SMC quirk.
        resumed.stream.poll(float(resumed.step + resumed.window))
        tail = [
            resumed.process_window(float(i * resumed.step))
            for i in range(2, len(ref))
        ]
        resumed.close()
        assert_windows_equal(ref, prefix + tail)

    def test_checkpoint_names_its_estimator(self):
        trace, horizon = make_trace(n_tasks=80)
        stem = build("stem", trace, horizon)
        smc = build("smc", trace, horizon)
        try:
            state = stem.state_dict()
            with pytest.raises(InferenceError, match="captured by"):
                smc.load_state_dict(state)
            with pytest.raises(InferenceError, match="captured by"):
                stem.load_state_dict(smc.state_dict())
        finally:
            stem.close()
            smc.close()

    def test_checkpoint_rejects_config_mismatch(self):
        trace, horizon = make_trace(n_tasks=80)
        est = build("smc", trace, horizon)
        other = build("smc", trace, horizon, n_particles=12)
        try:
            with pytest.raises(InferenceError, match="captured under config"):
                other.load_state_dict(est.state_dict())
        finally:
            est.close()
            other.close()

    def test_smc_state_rides_in_the_stem_envelope(self):
        trace, horizon = make_trace(n_tasks=150)
        est = build("smc", trace, horizon, windows=2)
        est.process_window(0.0)
        state = est.state_dict()
        est.close()
        assert set(state["smc"]) == {"thetas", "log_weights", "n_rejuvenations"}
        if state["smc"]["thetas"] is not None:
            assert len(state["smc"]["thetas"]) == 8
        assert len(state["smc"]["log_weights"]) == 8


class TestSMCBehavior:
    def test_same_seed_is_bitwise_deterministic(self):
        trace, horizon = make_trace(n_tasks=200)
        a = build("smc", trace, horizon, windows=4).run()
        b = build("smc", trace, horizon, windows=4).run()
        assert_windows_equal(a, b)

    def test_rejects_sharding(self):
        trace, horizon = make_trace(n_tasks=80)
        with pytest.raises(InferenceError, match="in-process"):
            build("smc", trace, horizon, shards=2)
        with pytest.raises(InferenceError, match="in-process"):
            build("smc", trace, horizon, shards=2, shard_workers=2)

    def test_overlapping_windows_trigger_sparsely(self):
        """The O(arrival) claim in miniature: with step << window most
        windows ride on reweighting alone instead of re-running Gibbs."""
        trace, horizon = make_trace(n_tasks=300)
        est = build(
            "smc", trace, horizon, windows=3,
            step=horizon / 12, stem_iterations=8,
        )
        windows = est.run()
        ok = [w for w in windows if w.rates is not None]
        assert len(ok) >= 8
        assert 1 <= est.n_rejuvenations < len(ok)
        for w in ok:
            rates = np.asarray(w.rates)
            assert np.all(np.isfinite(rates)) and np.all(rates > 0.0)

    @pytest.mark.slow
    def test_ks_agreement_with_windowed_stem_on_webapp(self):
        """Per-queue window-rate series from SMC and from the windowed
        StEM reference must be draws from statistically indistinguishable
        distributions on the paper-shaped webapp workload."""
        sim = generate_webapp_trace(WebAppConfig(n_requests=220), random_state=21)
        trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=2)
        horizon = float(np.nanmax(sim.events.departure))
        kwargs = dict(windows=3, step=horizon / 9, stem_iterations=20, seed=13)
        stem = build("stem", trace, horizon, **kwargs).run()
        smc = build("smc", trace, horizon, n_particles=16, **kwargs).run()
        stem_rates = np.array([w.rates for w in stem if w.rates is not None])
        smc_rates = np.array([w.rates for w in smc if w.rates is not None])
        assert stem_rates.shape[0] >= 6 and smc_rates.shape[0] >= 6
        counts = sim.events.events_per_queue()
        checked = 0
        for q in range(stem_rates.shape[1]):
            if counts[q] < 50:
                continue  # sparse queues estimate noisily under any scheme
            p = stats.ks_2samp(stem_rates[:, q], smc_rates[:, q]).pvalue
            assert p > 0.01, (
                f"queue {q}: SMC and StEM window-rate series diverge "
                f"(KS p={p:.4f})"
            )
            checked += 1
        assert checked >= 3


positive_weights = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=64,
).filter(lambda ws: sum(ws) > 0.0)


class TestSystematicResample:
    @given(weights=positive_weights, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_offspring_counts_are_weight_proportional(self, weights, seed):
        w = np.asarray(weights, dtype=float)
        idx = systematic_resample(w, random_state=seed)
        assert idx.shape == w.shape
        assert idx.min() >= 0 and idx.max() < w.size
        counts = np.bincount(idx, minlength=w.size)
        expected = w.size * w / w.sum()
        # Systematic resampling's defining property: every offspring
        # count is floor or ceil of its expectation.
        assert np.all(np.abs(counts - expected) <= 1.0 + 1e-6)

    @given(weights=positive_weights, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_fixed_seed_is_deterministic(self, weights, seed):
        a = systematic_resample(weights, random_state=seed)
        b = systematic_resample(weights, random_state=seed)
        np.testing.assert_array_equal(a, b)

    def test_degenerate_inputs_raise(self):
        with pytest.raises(InferenceError, match="all-zero"):
            systematic_resample(np.zeros(4))
        with pytest.raises(InferenceError, match="finite"):
            systematic_resample([1.0, np.nan])
        with pytest.raises(InferenceError, match="nonnegative|finite"):
            systematic_resample([1.0, -0.5])
        with pytest.raises(InferenceError, match="nonempty"):
            systematic_resample([])
        with pytest.raises(InferenceError, match="nonempty"):
            systematic_resample(np.ones((2, 2)))

    def test_effective_sample_size_bounds(self):
        n = 16
        uniform = np.zeros(n)
        assert effective_sample_size(uniform) == pytest.approx(n)
        point_mass = np.full(n, -np.inf)
        point_mass[3] = 0.0
        assert effective_sample_size(point_mass) == pytest.approx(1.0)
        with pytest.raises(InferenceError, match="degenerate"):
            effective_sample_size(np.full(n, -np.inf))
