"""Tests for posterior summaries at fixed parameters."""

import numpy as np
import pytest

from repro.inference import estimate_posterior, run_stem
from repro.observation import TaskSampling


class TestEstimatePosterior:
    def test_summary_shapes(self, tandem_sim, tandem_trace):
        summary = estimate_posterior(
            tandem_trace, rates=tandem_sim.true_rates(),
            n_samples=8, burn_in=4, random_state=0,
        )
        n_queues = tandem_sim.events.n_queues
        assert summary.n_queues == n_queues
        for arr in (summary.service_mean, summary.service_std,
                    summary.waiting_mean, summary.waiting_std):
            assert arr.shape == (n_queues,)
        assert summary.samples.n_samples == 8

    def test_tracks_ground_truth_at_true_rates(self, tandem_sim, tandem_trace):
        summary = estimate_posterior(
            tandem_trace, rates=tandem_sim.true_rates(),
            n_samples=25, burn_in=15, random_state=1,
        )
        true_service = tandem_sim.events.mean_service_by_queue()
        np.testing.assert_allclose(
            summary.service_mean[1:], true_service[1:], rtol=0.3
        )

    def test_default_rates_smoke(self, tandem_trace):
        summary = estimate_posterior(
            tandem_trace, n_samples=4, burn_in=2, random_state=2
        )
        assert np.all(np.isfinite(summary.service_mean[1:]))

    def test_warm_state_reuse(self, tandem_sim, tandem_trace):
        stem = run_stem(
            tandem_trace, n_iterations=20, random_state=3, init_method="heuristic"
        )
        summary = estimate_posterior(
            tandem_trace, rates=stem.rates, state=stem.sampler.state,
            n_samples=6, burn_in=2, random_state=4,
        )
        np.testing.assert_allclose(summary.rates, stem.rates)

    def test_uncertainty_shrinks_with_more_data(self, tandem_sim):
        stds = {}
        for fraction in (0.05, 0.6):
            trace = TaskSampling(fraction=fraction).observe(
                tandem_sim.events, random_state=5
            )
            summary = estimate_posterior(
                trace, rates=tandem_sim.true_rates(),
                n_samples=20, burn_in=10, random_state=6,
            )
            stds[fraction] = float(np.nanmean(summary.service_std[1:]))
        assert stds[0.6] < stds[0.05]
