"""Tests for the piecewise-exponential density (paper Figure 3 machinery)."""

import numpy as np
import pytest
from scipy import integrate

from repro.errors import InferenceError
from repro.inference import PiecewiseExponential


class TestConstruction:
    def test_requires_matching_lengths(self):
        with pytest.raises(InferenceError):
            PiecewiseExponential([0.0, 1.0], [1.0, 2.0])

    def test_requires_finite_left(self):
        with pytest.raises(InferenceError):
            PiecewiseExponential([-np.inf, 1.0], [1.0])

    def test_requires_decay_for_infinite_tail(self):
        with pytest.raises(InferenceError):
            PiecewiseExponential([0.0, np.inf], [0.5])
        PiecewiseExponential([0.0, np.inf], [-0.5])  # fine

    def test_rejects_empty_support(self):
        with pytest.raises(InferenceError):
            PiecewiseExponential([1.0, 1.0], [0.0])

    def test_drops_zero_width_pieces(self):
        dist = PiecewiseExponential([0.0, 0.5, 0.5, 1.0], [1.0, 2.0, -1.0])
        assert dist.n_pieces == 2

    def test_rejects_decreasing_knots(self):
        with pytest.raises(InferenceError):
            PiecewiseExponential([0.0, 1.0, 0.5], [1.0, 1.0])


class TestAgainstNumericalIntegration:
    """The exact validation behind benchmark fig3: compare every quantity
    with brute-force numerical integration of exp(phi(x))."""

    CASES = [
        ([0.0, 1.0], [-2.0]),
        ([0.0, 1.0], [3.0]),
        ([0.0, 1.0], [0.0]),
        ([2.0, 3.0, 5.0], [-1.0, 2.0]),
        ([0.0, 0.5, 1.0, 4.0], [-5.0, 0.0, 5.0]),
        ([1.0, 1.001, 1.002], [800.0, -900.0]),
        ([0.0, 10.0, 20.0], [1e-16, -1e-16]),
    ]

    def _brute_phi(self, knots, slopes, x):
        phi = 0.0
        for i, c in enumerate(slopes):
            lo, hi = knots[i], knots[i + 1]
            if x <= hi:
                return phi + c * (x - lo)
            phi += c * (hi - lo)
        return phi

    @pytest.mark.parametrize("knots,slopes", CASES)
    def test_pdf_matches_brute_force(self, knots, slopes):
        dist = PiecewiseExponential(knots, slopes)
        z, _ = integrate.quad(
            lambda x: np.exp(self._brute_phi(knots, slopes, x)),
            knots[0], knots[-1], points=knots[1:-1], limit=200,
        )
        xs = np.linspace(knots[0] + 1e-9, knots[-1] - 1e-9, 17)
        for x in xs:
            expected = np.exp(self._brute_phi(knots, slopes, x)) / z
            assert np.exp(dist.log_pdf(float(x))) == pytest.approx(expected, rel=1e-6)

    @pytest.mark.parametrize("knots,slopes", CASES)
    def test_cdf_matches_brute_force(self, knots, slopes):
        dist = PiecewiseExponential(knots, slopes)
        z, _ = integrate.quad(
            lambda x: np.exp(self._brute_phi(knots, slopes, x)),
            knots[0], knots[-1], points=knots[1:-1], limit=200,
        )
        for x in np.linspace(knots[0], knots[-1], 9):
            num, _ = integrate.quad(
                lambda t: np.exp(self._brute_phi(knots, slopes, t)),
                knots[0], x, limit=200,
            )
            assert dist.cdf(float(x)) == pytest.approx(num / z, abs=1e-7)

    @pytest.mark.parametrize("knots,slopes", CASES)
    def test_mean_matches_brute_force(self, knots, slopes):
        dist = PiecewiseExponential(knots, slopes)
        z, _ = integrate.quad(
            lambda x: np.exp(self._brute_phi(knots, slopes, x)),
            knots[0], knots[-1], points=knots[1:-1], limit=200,
        )
        m, _ = integrate.quad(
            lambda x: x * np.exp(self._brute_phi(knots, slopes, x)),
            knots[0], knots[-1], points=knots[1:-1], limit=200,
        )
        assert dist.mean() == pytest.approx(m / z, rel=1e-6)

    def test_infinite_tail_mean(self):
        # Pure exponential shifted to start at 3: mean = 3 + 1/2.
        dist = PiecewiseExponential([3.0, np.inf], [-2.0])
        assert dist.mean() == pytest.approx(3.5)


class TestSampling:
    @pytest.mark.parametrize("knots,slopes", TestAgainstNumericalIntegration.CASES)
    def test_samples_match_cdf(self, knots, slopes, rng):
        """KS-style check: empirical CDF of draws vs exact CDF."""
        dist = PiecewiseExponential(knots, slopes)
        draws = np.array([dist.sample(rng) for _ in range(4000)])
        assert np.all(draws >= knots[0])
        assert np.all(draws <= knots[-1])
        u = np.array([dist.cdf(float(x)) for x in draws])
        # PIT: transformed draws must be Unif(0,1).
        grid = np.linspace(0.05, 0.95, 19)
        emp = np.array([np.mean(u <= g) for g in grid])
        assert np.max(np.abs(emp - grid)) < 0.035

    def test_infinite_tail_sampling(self, rng):
        dist = PiecewiseExponential([1.0, np.inf], [-4.0])
        draws = np.array([dist.sample(rng) for _ in range(20000)])
        assert draws.min() >= 1.0
        assert draws.mean() == pytest.approx(1.25, rel=0.03)

    def test_piece_probabilities_sum_to_one(self):
        dist = PiecewiseExponential([0.0, 1.0, 2.0, 3.0], [1.0, 0.0, -1.0])
        probs = dist.piece_probabilities()
        assert probs.shape == (3,)
        assert probs.sum() == pytest.approx(1.0)

    def test_extreme_slopes_no_overflow(self, rng):
        # Slopes that would overflow a naive exp() implementation.
        dist = PiecewiseExponential([0.0, 1.0, 2.0], [1000.0, -1000.0])
        x = dist.sample(rng)
        assert 0.0 <= x <= 2.0
        # Virtually all mass near the middle knot.
        assert dist.cdf(0.98) < 0.01
        assert dist.cdf(1.02) > 0.99
