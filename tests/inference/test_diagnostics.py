"""Tests for MCMC diagnostics."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import autocorrelation, effective_sample_size, geweke_z


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        chain = rng.normal(size=500)
        acf = autocorrelation(chain)
        assert acf[0] == pytest.approx(1.0)

    def test_iid_has_no_correlation(self, rng):
        chain = rng.normal(size=20000)
        acf = autocorrelation(chain, max_lag=5)
        np.testing.assert_allclose(acf[1:], 0.0, atol=0.03)

    def test_ar1_matches_theory(self, rng):
        phi = 0.8
        n = 50000
        chain = np.empty(n)
        chain[0] = 0.0
        noise = rng.normal(size=n)
        for i in range(1, n):
            chain[i] = phi * chain[i - 1] + noise[i]
        acf = autocorrelation(chain, max_lag=3)
        np.testing.assert_allclose(acf[1:4], [phi, phi**2, phi**3], atol=0.03)

    def test_constant_chain(self):
        acf = autocorrelation(np.ones(100), max_lag=3)
        np.testing.assert_allclose(acf, 1.0)

    def test_rejects_short_chain(self):
        with pytest.raises(InferenceError):
            autocorrelation(np.array([1.0]))


class TestESS:
    def test_iid_ess_near_n(self, rng):
        chain = rng.normal(size=5000)
        ess = effective_sample_size(chain)
        assert 0.7 * 5000 < ess <= 5000 * 1.2

    def test_correlated_chain_has_lower_ess(self, rng):
        phi = 0.9
        n = 5000
        chain = np.empty(n)
        chain[0] = 0.0
        noise = rng.normal(size=n)
        for i in range(1, n):
            chain[i] = phi * chain[i - 1] + noise[i]
        ess = effective_sample_size(chain)
        # Theoretical tau = (1+phi)/(1-phi) = 19 -> ESS ~ n/19.
        assert ess < n / 8

    def test_rejects_tiny_chain(self):
        with pytest.raises(InferenceError):
            effective_sample_size(np.array([1.0, 2.0]))


class TestGeweke:
    def test_stationary_chain_small_z(self, rng):
        chain = rng.normal(size=4000)
        assert abs(geweke_z(chain)) < 3.0

    def test_drifting_chain_large_z(self, rng):
        chain = np.linspace(0.0, 5.0, 2000) + rng.normal(size=2000) * 0.1
        assert abs(geweke_z(chain)) > 5.0

    def test_fraction_validation(self, rng):
        chain = rng.normal(size=100)
        with pytest.raises(InferenceError):
            geweke_z(chain, first=0.7, last=0.7)

    def test_rejects_short_chain(self):
        with pytest.raises(InferenceError):
            geweke_z(np.ones(10))


class TestOnRealChains:
    def test_gibbs_chain_diagnostics(self, tandem_sim, tandem_trace):
        """Run diagnostics on an actual sampler chain end to end."""
        from repro.inference import GibbsSampler, heuristic_initialize

        rates = tandem_sim.true_rates()
        state = heuristic_initialize(tandem_trace, rates)
        sampler = GibbsSampler(tandem_trace, state, rates, random_state=0)
        samples = sampler.collect(n_samples=60, burn_in=20)
        chain = samples.mean_service[:, 1]
        ess = effective_sample_size(chain)
        assert 1.0 <= ess <= 60.0
        assert np.isfinite(geweke_z(chain))
