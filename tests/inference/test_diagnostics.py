"""Tests for MCMC diagnostics."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import (
    autocorrelation,
    effective_sample_size,
    geweke_z,
    multichain_ess,
    split_r_hat,
)


def _ar1_chains(rng, m, n, phi):
    """m independent AR(1) chains with coefficient phi."""
    chains = np.empty((m, n))
    noise = rng.normal(size=(m, n))
    chains[:, 0] = noise[:, 0]
    for i in range(1, n):
        chains[:, i] = phi * chains[:, i - 1] + noise[:, i]
    return chains


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        chain = rng.normal(size=500)
        acf = autocorrelation(chain)
        assert acf[0] == pytest.approx(1.0)

    def test_iid_has_no_correlation(self, rng):
        chain = rng.normal(size=20000)
        acf = autocorrelation(chain, max_lag=5)
        np.testing.assert_allclose(acf[1:], 0.0, atol=0.03)

    def test_ar1_matches_theory(self, rng):
        phi = 0.8
        n = 50000
        chain = np.empty(n)
        chain[0] = 0.0
        noise = rng.normal(size=n)
        for i in range(1, n):
            chain[i] = phi * chain[i - 1] + noise[i]
        acf = autocorrelation(chain, max_lag=3)
        np.testing.assert_allclose(acf[1:4], [phi, phi**2, phi**3], atol=0.03)

    def test_constant_chain(self):
        acf = autocorrelation(np.ones(100), max_lag=3)
        np.testing.assert_allclose(acf, 1.0)

    def test_rejects_short_chain(self):
        with pytest.raises(InferenceError):
            autocorrelation(np.array([1.0]))


class TestESS:
    def test_iid_ess_near_n(self, rng):
        chain = rng.normal(size=5000)
        ess = effective_sample_size(chain)
        assert 0.7 * 5000 < ess <= 5000 * 1.2

    def test_correlated_chain_has_lower_ess(self, rng):
        phi = 0.9
        n = 5000
        chain = np.empty(n)
        chain[0] = 0.0
        noise = rng.normal(size=n)
        for i in range(1, n):
            chain[i] = phi * chain[i - 1] + noise[i]
        ess = effective_sample_size(chain)
        # Theoretical tau = (1+phi)/(1-phi) = 19 -> ESS ~ n/19.
        assert ess < n / 8

    def test_rejects_tiny_chain(self):
        with pytest.raises(InferenceError):
            effective_sample_size(np.array([1.0, 2.0]))


class TestGeweke:
    def test_stationary_chain_small_z(self, rng):
        chain = rng.normal(size=4000)
        assert abs(geweke_z(chain)) < 3.0

    def test_drifting_chain_large_z(self, rng):
        chain = np.linspace(0.0, 5.0, 2000) + rng.normal(size=2000) * 0.1
        assert abs(geweke_z(chain)) > 5.0

    def test_fraction_validation(self, rng):
        chain = rng.normal(size=100)
        with pytest.raises(InferenceError):
            geweke_z(chain, first=0.7, last=0.7)

    def test_rejects_short_chain(self):
        with pytest.raises(InferenceError):
            geweke_z(np.ones(10))


class TestSplitRHat:
    def test_iid_chains_near_one(self, rng):
        chains = rng.normal(size=(4, 2000))
        assert split_r_hat(chains) == pytest.approx(1.0, abs=0.02)

    def test_mean_shifted_chains_much_greater_than_one(self, rng):
        chains = rng.normal(size=(4, 500)) + np.arange(4)[:, None] * 5.0
        assert split_r_hat(chains) > 3.0

    def test_within_chain_drift_detected(self, rng):
        """The *split* part: agreeing-but-drifting chains still flag."""
        drift = np.linspace(0.0, 5.0, 1000)
        chains = rng.normal(size=(3, 1000)) * 0.1 + drift[None, :]
        # Halves of a 0->5 ramp differ by ~2.5 while each half still drifts
        # ~2.5 internally, so R-hat lands near 2 — far above the ~1.01
        # convergence rule either way.
        assert split_r_hat(chains) > 1.5

    def test_single_chain_is_supported(self, rng):
        assert split_r_hat(rng.normal(size=2000)) == pytest.approx(1.0, abs=0.05)

    def test_constant_chains_converged(self):
        assert split_r_hat(np.ones((3, 100))) == 1.0

    def test_nan_propagates(self, rng):
        chains = rng.normal(size=(2, 100))
        chains[0, 3] = np.nan
        assert np.isnan(split_r_hat(chains))

    def test_rejects_short_chains(self, rng):
        with pytest.raises(InferenceError):
            split_r_hat(rng.normal(size=(2, 3)))


class TestMultiChainESS:
    def test_iid_chains_ess_near_total(self, rng):
        m, n = 4, 2000
        ess = multichain_ess(rng.normal(size=(m, n)))
        assert 0.7 * m * n < ess <= m * n

    def test_ar1_matches_theory(self, rng):
        phi = 0.8
        m, n = 4, 20000
        chains = _ar1_chains(rng, m, n, phi)
        tau = (1 + phi) / (1 - phi)  # = 9
        ess = multichain_ess(chains)
        assert ess == pytest.approx(m * n / tau, rel=0.25)

    def test_scales_with_chain_count_vs_single_chain(self, rng):
        """m well-mixed chains carry ~m times one chain's ESS."""
        phi = 0.6
        m, n = 4, 8000
        chains = _ar1_chains(rng, m, n, phi)
        singles = [effective_sample_size(c) for c in chains]
        combined = multichain_ess(chains)
        assert combined == pytest.approx(sum(singles), rel=0.3)

    def test_disagreeing_chains_have_tiny_ess(self, rng):
        chains = rng.normal(size=(4, 1000)) + np.arange(4)[:, None] * 10.0
        # Between-chain variance dominates: ESS collapses toward m.
        assert multichain_ess(chains) < 50.0

    def test_constant_chains(self):
        assert multichain_ess(np.ones((2, 100))) == 200.0

    def test_nan_propagates(self, rng):
        chains = rng.normal(size=(2, 100))
        chains[1, 0] = np.inf
        assert np.isnan(multichain_ess(chains))


class TestOnRealChains:
    def test_gibbs_chain_diagnostics(self, tandem_sim, tandem_trace):
        """Run diagnostics on an actual sampler chain end to end."""
        from repro.inference import GibbsSampler, heuristic_initialize

        rates = tandem_sim.true_rates()
        state = heuristic_initialize(tandem_trace, rates)
        sampler = GibbsSampler(tandem_trace, state, rates, random_state=0)
        samples = sampler.collect(n_samples=60, burn_in=20)
        chain = samples.mean_service[:, 1]
        ess = effective_sample_size(chain)
        assert 1.0 <= ess <= 60.0
        assert np.isfinite(geweke_z(chain))
