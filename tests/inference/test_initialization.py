"""Tests for both latent-time initializers and the rate initializer."""

import numpy as np
import pytest

from repro.errors import InfeasibleInitializationError, InferenceError
from repro.inference import heuristic_initialize, lp_initialize
from repro.inference.init_heuristic import (
    constraint_edges,
    initial_rates_from_observed,
)
from repro.inference.stem import initialize_state
from repro.network import build_tandem_network, build_three_tier_network
from repro.observation import EventSampling, TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(params=["heuristic", "lp"])
def initializer(request):
    return {"heuristic": heuristic_initialize, "lp": lp_initialize}[request.param]


class TestFeasibility:
    def test_task_sampled_trace(self, three_tier_sim, initializer):
        trace = TaskSampling(fraction=0.1).observe(three_tier_sim.events, random_state=0)
        rates = three_tier_sim.true_rates()
        state = initializer(trace, rates)
        state.validate()
        assert not np.any(np.isnan(state.arrival))
        assert not np.any(np.isnan(state.departure))

    def test_event_sampled_trace(self, tandem_sim, initializer):
        """Partially observed tasks — the hard case the paper mentions."""
        trace = EventSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        state = initializer(trace, tandem_sim.true_rates())
        state.validate()

    def test_sparse_observation(self, tandem_sim, initializer):
        trace = TaskSampling(fraction=0.02).observe(tandem_sim.events, random_state=0)
        state = initializer(trace, tandem_sim.true_rates())
        state.validate()

    def test_observed_values_kept(self, tandem_sim, initializer):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        state = initializer(trace, tandem_sim.true_rates())
        obs = np.flatnonzero(trace.arrival_observed)
        np.testing.assert_allclose(
            state.arrival[obs], tandem_sim.events.arrival[obs], atol=1e-8
        )

    def test_full_observation_passthrough(self, tandem_sim, initializer):
        trace = TaskSampling(fraction=1.0).observe(tandem_sim.events, random_state=0)
        state = initializer(trace, tandem_sim.true_rates())
        np.testing.assert_allclose(state.departure, tandem_sim.events.departure)

    def test_overloaded_network(self, initializer):
        net = build_three_tier_network(10.0, (1, 4, 2))
        sim = simulate_network(net, 80, random_state=5)
        trace = TaskSampling(fraction=0.05).observe(sim.events, random_state=0)
        state = initializer(trace, sim.true_rates())
        state.validate()


class TestLPQuality:
    def test_lp_targets_mean_services(self, tandem_sim):
        """LP objective: services near 1/mu where constraints allow."""
        trace = TaskSampling(fraction=0.1).observe(tandem_sim.events, random_state=0)
        rates = tandem_sim.true_rates()
        state = lp_initialize(trace, rates)
        services = state.service_times()
        for q in (1, 2):
            members = state.queue_order(q)
            median = np.median(services[members])
            # Not exact (constraints bind), but the bulk sits near target.
            assert median < 5.0 / rates[q]

    def test_lp_beats_or_matches_heuristic_objective(self, tandem_sim):
        trace = TaskSampling(fraction=0.1).observe(tandem_sim.events, random_state=0)
        rates = tandem_sim.true_rates()
        lp_state = lp_initialize(trace, rates)
        h_state = heuristic_initialize(trace, rates)

        def objective(state):
            services = state.service_times()
            target = 1.0 / rates[state.queue]
            return float(np.abs(services - target).sum())

        # The LP minimizes (a relaxation of) this objective directly.
        assert objective(lp_state) <= objective(h_state) * 1.05


class TestConstraintGraph:
    def test_edges_cover_all_dependencies(self, tandem_sim):
        edges = constraint_edges(tandem_sim.events)
        ev = tandem_sim.events
        edge_set = set(edges)
        for e in range(ev.n_events):
            if ev.pi[e] >= 0:
                assert (int(ev.pi[e]), e) in edge_set
            if ev.rho[e] >= 0:
                assert (int(ev.rho[e]), e) in edge_set

    def test_infeasible_observations_detected(self, tandem_sim):
        """Corrupt an observed time so constraints are unsatisfiable."""
        trace = TaskSampling(fraction=0.5).observe(tandem_sim.events, random_state=0)
        skeleton = trace.skeleton
        # Find an observed task and reverse two of its observed times.
        for task_id in skeleton.task_ids:
            idx = skeleton.events_of_task(task_id)
            if trace.arrival_observed[idx[-1]] and idx.size >= 3:
                skeleton.arrival[idx[-1]] = 1e-6  # before its predecessor
                skeleton.departure[idx[-2]] = 1e-6
                break
        with pytest.raises(InfeasibleInitializationError):
            heuristic_initialize(trace, tandem_sim.true_rates())


class TestInitializeStateDispatch:
    def test_auto_uses_lp_for_small(self, tandem_trace, tandem_sim):
        state = initialize_state(
            tandem_trace, tandem_sim.true_rates(), method="auto", lp_size_limit=10**6
        )
        state.validate()

    def test_unknown_method_rejected(self, tandem_trace, tandem_sim):
        with pytest.raises(InferenceError):
            initialize_state(tandem_trace, tandem_sim.true_rates(), method="magic")


class TestInitialRates:
    def test_orders_of_magnitude(self, three_tier_sim):
        trace = TaskSampling(fraction=0.15).observe(
            three_tier_sim.events, random_state=0
        )
        rates = initial_rates_from_observed(trace)
        true = three_tier_sim.true_rates()
        assert rates.shape == true.shape
        assert np.all(rates > 0.0)
        # Arrival rate within a factor of 2; service rates within a decade.
        assert true[0] / 2 < rates[0] < true[0] * 2
        for q in range(1, len(true)):
            assert true[q] / 12 < rates[q] < true[q] * 12

    def test_throughput_proxy_handles_saturation(self, three_tier_sim):
        """The overloaded queue's init must not collapse to ~1/waiting."""
        trace = TaskSampling(fraction=0.15).observe(
            three_tier_sim.events, random_state=0
        )
        rates = initial_rates_from_observed(trace)
        # Queue 1 is the rho=2 tier; response-based init alone would give
        # a rate around 1/mean-response << 1.
        assert rates[1] > 1.0
