"""Tests for the M-step MLE."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import mle_rates
from repro.network import build_tandem_network
from repro.simulate import simulate_network


class TestMLE:
    def test_matches_closed_form(self, tandem_sim):
        ev = tandem_sim.events
        rates = mle_rates(ev)
        services = ev.service_times()
        for q in range(ev.n_queues):
            members = ev.queue_order(q)
            assert rates[q] == pytest.approx(members.size / services[members].sum())

    def test_consistency_at_scale(self):
        net = build_tandem_network(6.0, [9.0, 12.0])
        sim = simulate_network(net, 5000, random_state=77)
        rates = mle_rates(sim.events)
        np.testing.assert_allclose(rates, [6.0, 9.0, 12.0], rtol=0.06)

    def test_arrival_rate_is_queue_zero(self, tandem_sim):
        rates = mle_rates(tandem_sim.events)
        ev = tandem_sim.events
        entries = np.sort(ev.departure[ev.seq == 0])
        assert rates[0] == pytest.approx(len(entries) / entries[-1])

    def test_rejects_infeasible(self, tandem_sim):
        ev = tandem_sim.events.copy()
        last = ev.events_of_task(0)[-1]
        ev.departure[last] -= 100.0
        with pytest.raises(InferenceError):
            mle_rates(ev)

    def test_clamps_extremes(self, tandem_sim):
        ev = tandem_sim.events.copy()
        rates = mle_rates(ev, min_rate=1.0, max_rate=7.0)
        assert np.all(rates >= 1.0)
        assert np.all(rates <= 7.0)

    def test_prior_regularization_shrinks(self, tandem_sim):
        ev = tandem_sim.events
        plain = mle_rates(ev)
        prior = np.full(ev.n_queues, 100.0)
        regularized = mle_rates(ev, prior_strength=50.0, prior_rates=prior)
        # The prior pulls every rate toward 100.
        assert np.all(regularized > plain)

    def test_prior_needs_rates(self, tandem_sim):
        with pytest.raises(InferenceError):
            mle_rates(tandem_sim.events, prior_strength=1.0)
