"""Exactness tests for the Gibbs conditionals (paper Eq. 2-4).

The strongest possible check: for every event in a simulated trace, the
conditional density returned by ``arrival_conditional`` must equal the
joint density of Eq. (1) as a function of that arrival, up to an additive
constant in log space — evaluated by brute force through
``EventSet.log_joint``.
"""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference.conditional import (
    arrival_conditional,
    arrival_neighborhood,
    final_departure_conditional,
    markov_blanket,
)
from repro.network import build_tandem_network, build_three_tier_network
from repro.fsm import probabilistic_branch_fsm
from repro.network.topology import INITIAL_QUEUE_NAME, QueueingNetwork
from repro.distributions import Exponential
from repro.simulate import simulate_network


def assert_conditional_matches_joint(events, rates, kind="arrival", n_grid=9):
    """For every movable variable, check conditional == joint + const."""
    checked = 0
    for e in range(events.n_events):
        if kind == "arrival":
            if events.pi[e] < 0:
                continue
            dist = arrival_conditional(events, e, rates)
            setter, orig = events.set_arrival, float(events.arrival[e])
        else:
            if events.pi_inv[e] != -1:
                continue
            dist = final_departure_conditional(events, e, rates)
            setter, orig = events.set_final_departure, float(events.departure[e])
        if dist is None:
            continue
        lo, hi = dist.support
        hi_eff = min(hi, lo + max(4.0, 4.0 * abs(lo)))
        if hi_eff <= lo:
            continue
        grid = np.linspace(lo + 1e-10, hi_eff - 1e-10, n_grid)
        diffs = []
        for x in grid:
            setter(int(e), float(x))
            diffs.append(events.log_joint(rates) - dist.log_pdf(float(x)))
        setter(int(e), orig)
        diffs = np.array(diffs)
        assert np.max(diffs) - np.min(diffs) < 1e-6, (
            f"conditional mismatch at event {e}: spread "
            f"{np.max(diffs) - np.min(diffs):.3e}"
        )
        checked += 1
    assert checked > 0


class TestArrivalConditionalExactness:
    def test_tandem(self):
        net = build_tandem_network(4.0, [5.0, 7.0])
        sim = simulate_network(net, 40, random_state=11)
        assert_conditional_matches_joint(sim.events, sim.true_rates(), "arrival")

    def test_three_tier_with_overload(self):
        net = build_three_tier_network(10.0, (1, 2, 4))
        sim = simulate_network(net, 40, random_state=13)
        assert_conditional_matches_joint(sim.events, sim.true_rates(), "arrival")

    def test_heterogeneous_rates(self):
        net = build_tandem_network(2.0, [3.0, 30.0, 0.9])
        sim = simulate_network(net, 30, random_state=17)
        assert_conditional_matches_joint(sim.events, sim.true_rates(), "arrival")

    def test_self_loop_revisits(self):
        """Tasks visiting the same queue twice in a row (rho(e) == pi(e))."""
        fsm = probabilistic_branch_fsm([1], [1.0], n_queues=2, repeat_prob=0.6)
        net = QueueingNetwork(
            queue_names=(INITIAL_QUEUE_NAME, "svc"),
            services={INITIAL_QUEUE_NAME: Exponential(3.0), "svc": Exponential(5.0)},
            fsm=fsm,
        )
        sim = simulate_network(net, 30, random_state=19)
        # Confirm the scenario actually contains back-to-back visits.
        ev = sim.events
        has_self_loop = any(
            ev.pi[e] >= 0 and ev.rho[e] == ev.pi[e] for e in range(ev.n_events)
        )
        assert has_self_loop
        assert_conditional_matches_joint(ev, sim.true_rates(), "arrival")


class TestFinalDepartureConditionalExactness:
    def test_tandem(self):
        net = build_tandem_network(4.0, [5.0, 7.0])
        sim = simulate_network(net, 40, random_state=23)
        assert_conditional_matches_joint(sim.events, sim.true_rates(), "departure")

    def test_three_tier(self):
        net = build_three_tier_network(10.0, (2, 1, 4))
        sim = simulate_network(net, 40, random_state=29)
        assert_conditional_matches_joint(sim.events, sim.true_rates(), "departure")


class TestNeighborhood:
    def test_bounds_bracket_current_value(self):
        net = build_three_tier_network(10.0, (1, 2, 4))
        sim = simulate_network(net, 50, random_state=31)
        ev = sim.events
        rates = sim.true_rates()
        for e in range(ev.n_events):
            if ev.pi[e] < 0:
                continue
            nb = arrival_neighborhood(ev, e, rates)
            assert nb.lower <= ev.arrival[e] + 1e-9
            assert ev.arrival[e] <= nb.upper + 1e-9

    def test_initial_event_rejected(self):
        net = build_tandem_network(4.0, [5.0])
        sim = simulate_network(net, 5, random_state=1)
        first = sim.events.events_of_task(0)[0]
        with pytest.raises(InferenceError):
            arrival_neighborhood(sim.events, int(first), sim.true_rates())

    def test_final_departure_rejects_inner_event(self):
        net = build_tandem_network(4.0, [5.0, 6.0])
        sim = simulate_network(net, 5, random_state=1)
        inner = sim.events.events_of_task(0)[1]
        with pytest.raises(InferenceError):
            final_departure_conditional(sim.events, int(inner), sim.true_rates())

    def test_markov_blanket_size(self):
        """The blanket never exceeds the paper's Figure-2 neighborhood."""
        net = build_three_tier_network(10.0, (1, 2, 4))
        sim = simulate_network(net, 60, random_state=37)
        ev = sim.events
        for e in range(ev.n_events):
            if ev.pi[e] < 0:
                continue
            blanket = markov_blanket(ev, e)
            assert 2 <= len(blanket["resampled"]) <= 3
            assert len(blanket["fixed"]) <= 4
            assert e in blanket["resampled"]
            assert int(ev.pi[e]) in blanket["resampled"]

    def test_conditional_support_is_positive_width_or_none(self):
        net = build_three_tier_network(10.0, (4, 2, 1))
        sim = simulate_network(net, 40, random_state=41)
        rates = sim.true_rates()
        for e in range(sim.events.n_events):
            if sim.events.pi[e] < 0:
                continue
            dist = arrival_conditional(sim.events, e, rates)
            if dist is not None:
                lo, hi = dist.support
                assert hi > lo
