"""The native (JIT-lowered) backend: fuzzed agreement + fallback contract.

Three claims, each pinned on every platform (the lowered loops are tested
through ``py_func`` so they run as plain Python when numba is absent):

1. **Scalar core** — the compiled ``_lie`` is branch-for-branch the scalar
   reference ``_log_integral_exp``: bitwise across the ``_FLAT_EPS`` flat
   transition, the ``|slope * width|`` ~1e6 overflow regimes and the
   unbounded exponential tail, and within 1 ulp of the vectorized numpy
   ``log_integral_exp`` (numpy's SIMD ``expm1``/``log1p`` legitimately
   differ from libm by up to 1 ulp on a small fraction of inputs).
2. **Lowered helpers and fused loops** — the loop mirrors of the kernel
   module's ``_piece_log_masses`` / ``_log_normalizer`` / ``_select_pieces``
   / ``_invert_pieces`` and the fused batch evaluators agree with the numpy
   path to 1e-10 per move on real sampler batches.
3. **Fallback** — without numba, ``kernel="native"`` degrades to the
   inherited pure-numpy evaluation: sweeps are bitwise the array kernel's,
   and capability reporting says so.
"""

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InferenceError
from repro.inference import GibbsSampler, heuristic_initialize
from repro.inference import native
from repro.inference.kernel import (
    ArraySweepKernel,
    _invert_pieces as np_invert_pieces,
    _log_normalizer as np_log_normalizer,
    _piece_log_masses as np_piece_log_masses,
    _select_pieces as np_select_pieces,
)
from repro.inference.native import (
    NUMBA_AVAILABLE,
    NativeSweepKernel,
    log_integral_exp as native_log_integral_exp,
    make_sweep_kernel,
    native_capability,
    py_func,
)
from repro.inference.piecewise import (
    _FLAT_EPS,
    _log_integral_exp,
    log_integral_exp as np_log_integral_exp,
)
from repro.network import build_tandem_network, build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network

# The pure-python implementations behind the (possibly) jitted loops: these
# run the exact lowered arithmetic on every platform.
_lie = py_func(native._lie)
_piece_log_masses = py_func(native._piece_log_masses)
_log_normalizer = py_func(native._log_normalizer)
_select_pieces = py_func(native._select_pieces)
_invert_pieces = py_func(native._invert_pieces)
_fused_arrival = py_func(native._fused_arrival)
_fused_departure = py_func(native._fused_departure)


def assert_ulp(a: float, b: float, n: int = 1) -> None:
    """a and b equal within *n* ulp (infinities must match exactly)."""
    if math.isinf(a) or math.isinf(b) or math.isnan(a) or math.isnan(b):
        assert a == b, f"{a} != {b}"
        return
    scale = max(abs(a), abs(b), 5e-324)
    assert abs(a - b) <= n * math.ulp(scale), f"{a} vs {b} differ by >{n} ulp"


# ----------------------------------------------------------------------
# Capability and factory.
# ----------------------------------------------------------------------


class TestCapability:
    def test_capability_report(self):
        cap = native_capability()
        assert cap["available"] is NUMBA_AVAILABLE
        if NUMBA_AVAILABLE:
            assert isinstance(cap["numba_version"], str)
            assert cap["fallback"] is None
        else:
            assert cap["numba_version"] is None
            assert cap["fallback"] == "array"

    def test_factory_selects_backend(self, tandem_trace, tandem_sim):
        rates = tandem_sim.true_rates()
        state = heuristic_initialize(tandem_trace, rates)
        for name, cls in (("array", ArraySweepKernel), ("native", NativeSweepKernel)):
            sampler = GibbsSampler(tandem_trace, state.copy(), rates,
                                   random_state=0, kernel=name)
            assert type(sampler._array_kernel) is cls
            sampler.close()

    def test_native_kernel_pickles_across_capability(
        self, tandem_trace, tandem_sim
    ):
        rates = tandem_sim.true_rates()
        state = heuristic_initialize(tandem_trace, rates)
        sampler = GibbsSampler(tandem_trace, state, rates, random_state=0,
                               kernel="native")
        kernel = pickle.loads(pickle.dumps(sampler._array_kernel))
        # Capability is decided per process, never baked into the pickle.
        assert kernel.native_active is NUMBA_AVAILABLE
        sampler.close()


# ----------------------------------------------------------------------
# 1. Scalar core fuzz: native vs scalar reference vs vectorized numpy.
# ----------------------------------------------------------------------

finite_slopes = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
finite_widths = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestScalarCoreFuzz:
    @given(slope=finite_slopes, width=finite_widths)
    @settings(max_examples=300, deadline=None)
    def test_bitwise_vs_scalar_reference(self, slope, width):
        """The lowered core IS the scalar reference on bounded pieces."""
        a = _lie(slope, width)
        b = _log_integral_exp(slope, width)
        assert a == b or (math.isnan(a) and math.isnan(b))

    @given(slope=finite_slopes, width=st.floats(min_value=1e-12, max_value=1e6))
    @settings(max_examples=300, deadline=None)
    def test_one_ulp_vs_vectorized(self, slope, width):
        """Within 1 ulp of numpy's SIMD evaluation everywhere."""
        a = _lie(slope, width)
        b = float(np_log_integral_exp(np.array([slope]), np.array([width]))[0])
        assert_ulp(a, b)

    @given(
        width=st.sampled_from([1.0, 3.7, 0.01, 123.456]),
        frac=st.sampled_from([0.5, 1.0 - 1e-12, 1.0, 1.0 + 1e-12, 2.0]),
        sign=st.sampled_from([-1.0, 1.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_flat_eps_transition_bitwise(self, width, frac, sign):
        """On both sides of the flat threshold all three paths agree
        bitwise: same |z| < _FLAT_EPS test on the same z product."""
        slope = sign * _FLAT_EPS * frac / width
        a = _lie(slope, width)
        b = _log_integral_exp(slope, width)
        c = float(np_log_integral_exp(np.array([slope]), np.array([width]))[0])
        assert a == b == c
        if frac < 1.0:
            assert a == math.log(width)

    @given(slope=st.floats(min_value=-1e6, max_value=-1e-12))
    @settings(max_examples=200, deadline=None)
    def test_unbounded_tail_bitwise(self, slope):
        a = _lie(slope, math.inf)
        b = _log_integral_exp(slope, math.inf)
        c = float(np_log_integral_exp(np.array([slope]), np.array([math.inf]))[0])
        assert a == b == c == -math.log(-slope)

    @given(slope=st.floats(min_value=0.0, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_invalid_unbounded_piece_raises_identically(self, slope):
        """Non-negative slope on an infinite width: both vectorized paths
        reject with the same InferenceError."""
        with pytest.raises(InferenceError, match="strictly negative slope"):
            np_log_integral_exp(np.array([slope]), np.array([math.inf]))
        with pytest.raises(InferenceError, match="strictly negative slope"):
            native_log_integral_exp(np.array([slope]), np.array([math.inf]))

    @given(slope=finite_slopes)
    @settings(max_examples=100, deadline=None)
    def test_zero_and_negative_widths_are_empty(self, slope):
        assert _lie(slope, 0.0) == -math.inf
        assert _lie(slope, -1.0) == -math.inf

    def test_vectorized_shapes_and_broadcast(self):
        slopes = np.array([[-2.0, 0.0], [3.0, -1e-20]])
        widths = np.array([1.5, 2.5])
        got = native_log_integral_exp(slopes, widths)
        want = np_log_integral_exp(slopes, np.broadcast_to(widths, slopes.shape))
        assert got.shape == (2, 2)
        np.testing.assert_allclose(got, want, rtol=1e-15, atol=0)


# ----------------------------------------------------------------------
# 2. Lowered helpers + fused loops vs the numpy kernel path.
# ----------------------------------------------------------------------


def _random_piece_grid(rng, m=64, k=3):
    """Random fixed-width piece rows like the kernel builds (some empty)."""
    start = rng.normal(size=(m, 1)) * 5.0
    widths = rng.random((m, k)) * 3.0
    # Some zero-width (degenerate) pieces, as clamped knots produce.
    widths[rng.random((m, k)) < 0.3] = 0.0
    knots = np.concatenate([start, start + np.cumsum(widths, axis=1)], axis=1)
    slopes = rng.normal(size=(m, k)) * 4.0
    return knots, slopes


class TestLoweredHelpers:
    def test_piece_log_masses_and_normalizer(self):
        rng = np.random.default_rng(7)
        knots, slopes = _random_piece_grid(rng)
        want_masses = np_piece_log_masses(knots, slopes)
        got_masses = np.empty_like(want_masses)
        _piece_log_masses(knots, slopes, got_masses)
        np.testing.assert_allclose(
            got_masses, want_masses, rtol=1e-13, atol=1e-300
        )
        want_z = np_log_normalizer(want_masses)
        got_z = np.empty(knots.shape[0])
        _log_normalizer(got_masses, got_z)
        np.testing.assert_allclose(got_z, want_z, rtol=1e-13)

    def test_select_and_invert(self):
        rng = np.random.default_rng(11)
        knots, slopes = _random_piece_grid(rng)
        masses = np_piece_log_masses(knots, slopes)
        log_z = np_log_normalizer(masses)
        u = rng.random(knots.shape[0])
        v = rng.random(knots.shape[0])
        want_idx = np_select_pieces(masses, log_z, u)
        got_idx = np.empty(knots.shape[0], dtype=np.int64)
        _select_pieces(masses, log_z, u, got_idx)
        np.testing.assert_array_equal(got_idx, want_idx)
        want_x = np_invert_pieces(knots, slopes, want_idx, v)
        got_x = np.empty(knots.shape[0])
        _invert_pieces(knots, slopes, got_idx.astype(np.int64), v, got_x)
        np.testing.assert_allclose(got_x, want_x, rtol=1e-13, atol=1e-13)


def warm_array_sampler(seed=5):
    net = build_three_tier_network(10.0, (1, 2, 4), service_rate=5.0)
    sim = simulate_network(net, 120, random_state=7)
    trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=seed)
    rates = sim.true_rates()
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=seed, kernel="array")
    sampler.run(3)
    return sampler


class TestFusedLoops:
    """The fused batch evaluators vs the numpy chunk path, move for move."""

    @pytest.fixture(scope="class")
    def warm(self):
        sampler = warm_array_sampler()
        yield sampler
        sampler.close()

    def _native_twin(self, warm):
        array = warm._array_kernel
        twin = make_sweep_kernel(
            "native", warm.state, warm._arrival_cache, warm._departure_cache,
            warm.rates,
        )
        # Force the lowered evaluation path regardless of numba presence:
        # the pure-python loops are the same arithmetic the JIT compiles.
        twin.native_active = True
        return array, twin

    def test_arrival_batches_agree_per_move(self, warm):
        array, twin = self._native_twin(warm)
        state = warm.state
        rng = np.random.default_rng(17)
        for sel in array.a_batches:
            u = rng.random(sel.size)
            v = rng.random(sel.size)
            ev_a, x_a = array._eval_arrival_chunk(
                state.arrival, state.departure, sel, u, v
            )
            ev_n, x_n = twin._eval_arrival_chunk(
                state.arrival, state.departure, sel, u, v
            )
            np.testing.assert_array_equal(ev_a, ev_n)
            np.testing.assert_allclose(x_n, x_a, rtol=1e-12, atol=1e-10)

    def test_departure_batches_agree_per_move(self, warm):
        array, twin = self._native_twin(warm)
        state = warm.state
        rng = np.random.default_rng(23)
        for sel in array.d_batches:
            u = rng.random(sel.size)
            v = rng.random(sel.size)
            ev_a, x_a = array._eval_departure_chunk(
                state.arrival, state.departure, sel, u, v
            )
            ev_n, x_n = twin._eval_departure_chunk(
                state.arrival, state.departure, sel, u, v
            )
            np.testing.assert_array_equal(ev_a, ev_n)
            np.testing.assert_allclose(x_n, x_a, rtol=1e-12, atol=1e-10)


# ----------------------------------------------------------------------
# 3. Fallback contract.
# ----------------------------------------------------------------------


class TestFallback:
    def test_full_sweeps_match_array_backend(self, tandem_trace, tandem_sim):
        """kernel="native" sweeps agree with kernel="array" to 1e-10 per
        time (bitwise when numba is absent and the fallback runs)."""
        rates = tandem_sim.true_rates()
        runs = {}
        for name in ("array", "native"):
            state = heuristic_initialize(tandem_trace, rates)
            sampler = GibbsSampler(tandem_trace, state, rates,
                                   random_state=33, kernel=name)
            sampler.run(5)
            runs[name] = (state.arrival.copy(), state.departure.copy())
            sampler.close()
        if not NUMBA_AVAILABLE:
            np.testing.assert_array_equal(runs["array"][0], runs["native"][0])
            np.testing.assert_array_equal(runs["array"][1], runs["native"][1])
        else:
            np.testing.assert_allclose(
                runs["native"][0], runs["array"][0], rtol=1e-10, atol=1e-10
            )
            np.testing.assert_allclose(
                runs["native"][1], runs["array"][1], rtol=1e-10, atol=1e-10
            )

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="exercises the no-numba path")
    def test_without_numba_reports_inactive(self, tandem_trace, tandem_sim):
        rates = tandem_sim.true_rates()
        state = heuristic_initialize(tandem_trace, rates)
        sampler = GibbsSampler(tandem_trace, state, rates, random_state=0,
                               kernel="native")
        assert sampler._array_kernel.native_active is False
        sampler.close()

    def test_native_counts_as_batch_kernel_for_shards(
        self, tandem_trace, tandem_sim
    ):
        rates = tandem_sim.true_rates()
        state = heuristic_initialize(tandem_trace, rates)
        # object kernel + shards is still rejected ...
        with pytest.raises(InferenceError, match="array kernel"):
            GibbsSampler(tandem_trace, state, rates, kernel="object", shards=2)
        # ... while native passes the same gate array does.
        sampler = GibbsSampler(tandem_trace, state, rates, random_state=3,
                               kernel="native", shards=2)
        sampler.sweep()
        sampler.close()
