"""Tests for the persistent StEM/MCEM worker pool.

The contract: E-step chains are pure functions of their recipes, so a
persistent-pool run is **bitwise identical** to the serial in-process run
at any worker count — and a worker that raises ``InferenceError`` mid
E-step takes the whole pool down cleanly (error surfaced, every process
joined, ``close`` idempotent).
"""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import (
    PersistentChainPool,
    build_chain_sampler,
    chain_recipes,
    run_mcem,
    run_stem,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(scope="module")
def pool_setup():
    net = build_tandem_network(4.0, [6.0, 9.0])
    sim = simulate_network(net, 200, random_state=88)
    trace = TaskSampling(fraction=0.15).observe(sim.events, random_state=8)
    return sim, trace


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_stem_matches_serial_at_any_worker_count(self, pool_setup, workers):
        _, trace = pool_setup
        kwargs = dict(
            n_iterations=8, random_state=9, init_method="heuristic", n_chains=3
        )
        serial = run_stem(trace, **kwargs)
        pooled = run_stem(trace, persistent_workers=workers, **kwargs)
        np.testing.assert_array_equal(serial.rates_history, pooled.rates_history)
        np.testing.assert_array_equal(serial.rates, pooled.rates)
        # The evolved chain states come back identical too.
        for s, p in zip(serial.samplers, pooled.samplers):
            np.testing.assert_array_equal(s.state.arrival, p.state.arrival)
            np.testing.assert_array_equal(s.state.departure, p.state.departure)

    def test_stem_single_chain_matches_serial(self, pool_setup):
        _, trace = pool_setup
        kwargs = dict(n_iterations=8, random_state=4, init_method="heuristic")
        serial = run_stem(trace, **kwargs)
        pooled = run_stem(trace, persistent_workers=1, **kwargs)
        np.testing.assert_array_equal(serial.rates_history, pooled.rates_history)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_mcem_matches_serial(self, pool_setup, workers):
        _, trace = pool_setup
        kwargs = dict(
            n_iterations=3, e_sweeps=4, e_burn_in=1, random_state=2,
            init_method="heuristic", n_chains=2,
        )
        serial = run_mcem(trace, **kwargs)
        pooled = run_mcem(trace, persistent_workers=workers, **kwargs)
        np.testing.assert_array_equal(serial.rates_history, pooled.rates_history)
        assert serial.total_sweeps == pooled.total_sweeps

    def test_returned_samplers_are_usable(self, pool_setup):
        _, trace = pool_setup
        result = run_stem(
            trace, n_iterations=6, random_state=3, init_method="heuristic",
            n_chains=2, persistent_workers=2,
        )
        result.sampler.state.validate()
        np.testing.assert_allclose(result.sampler.rates, result.rates)
        result.sampler.sweep()  # still sweepable after crossing the pipe


class TestPoolMechanics:
    def _recipes(self, trace, rates, n_chains=2):
        return chain_recipes(trace, rates, "heuristic", n_chains, 0.15, 7, True)

    def test_worker_count_clamped_to_chains(self, pool_setup):
        sim, trace = pool_setup
        pool = PersistentChainPool(
            self._recipes(trace, sim.true_rates()), workers=8
        )
        try:
            assert pool.n_workers == 2
            totals = pool.step(sim.true_rates())
            assert len(totals) == 2
        finally:
            pool.close()

    def test_step_statistics_match_inprocess_chains(self, pool_setup):
        """One pool round == running the same recipes in-process."""
        sim, trace = pool_setup
        rates = sim.true_rates()
        recipes = self._recipes(trace, rates)
        with PersistentChainPool(recipes, workers=2) as pool:
            shipped = pool.step(rates, n_keep=2)
        samplers = [build_chain_sampler(r) for r in recipes]
        for sampler, totals in zip(samplers, shipped):
            sampler.set_rates(rates)
            sampler.run(2)
            np.testing.assert_array_equal(
                totals, np.maximum(sampler.state.total_service_by_queue(), 0.0)
            )

    def test_inference_error_mid_step_shuts_down_cleanly(self, pool_setup):
        """A worker-side InferenceError surfaces and kills every worker."""
        sim, trace = pool_setup
        pool = PersistentChainPool(
            self._recipes(trace, sim.true_rates(), n_chains=3), workers=3
        )
        pool.step(sim.true_rates())
        with pytest.raises(InferenceError, match="persistent E-step worker failed"):
            # set_rates inside the worker rejects the negative rate.
            pool.step(np.array([4.0, -6.0, 9.0]))
        assert pool.closed
        for handle in pool._handles:
            assert not handle.is_alive()
        pool.close()  # idempotent
        with pytest.raises(InferenceError, match="closed"):
            pool.step(sim.true_rates())

    def test_dead_worker_connection_surfaces_as_inference_error(self, pool_setup):
        """A connection that dies *before* the request (send-side failure)
        must surface as InferenceError and close the pool, not leak a raw
        OSError with live workers behind it."""
        sim, trace = pool_setup
        pool = PersistentChainPool(
            self._recipes(trace, sim.true_rates(), n_chains=2), workers=2
        )
        for handle in pool._handles:
            handle.terminate()
            handle.join(timeout=5.0)
            handle.close_endpoint()
        with pytest.raises(InferenceError, match="failed"):
            pool.step(sim.true_rates())
        assert pool.closed

    def test_validation(self, pool_setup):
        sim, trace = pool_setup
        with pytest.raises(InferenceError):
            PersistentChainPool([])
        with pytest.raises(InferenceError):
            PersistentChainPool(
                self._recipes(trace, sim.true_rates()), workers=0
            )
