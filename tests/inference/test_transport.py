"""Tests for the pluggable worker transports (pipes vs sockets)."""

import socket
import threading

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import GibbsSampler, heuristic_initialize, run_stem
from repro.inference.transport import (
    PipeTransport,
    SocketEndpoint,
    SocketTransport,
    serve_worker,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(scope="module")
def transport_setup():
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks=160, random_state=23)
    trace = TaskSampling(fraction=0.25).observe(sim.events, random_state=4)
    return sim, trace


def _echo_worker(conn, payload) -> None:
    """Module-level worker (picklable) speaking the pool protocol shape."""
    conn.send(("ready", payload))
    while True:
        msg = conn.recv()
        if msg[0] == "close":
            conn.close()
            return
        conn.send(("ok", {0: msg[1]}))


class TestEndpoints:
    def test_socket_endpoint_roundtrips_numpy_payloads(self):
        a, b = socket.socketpair()
        left, right = SocketEndpoint(a), SocketEndpoint(b)
        payload = {"x": np.arange(5000, dtype=np.int64), "y": ("nested", 1.5)}
        got = {}

        def reader():
            got["value"] = right.recv()

        t = threading.Thread(target=reader)
        t.start()
        left.send(payload)
        t.join(timeout=10.0)
        assert not t.is_alive()
        np.testing.assert_array_equal(got["value"]["x"], payload["x"])
        assert got["value"]["y"] == payload["y"]
        left.close()
        with pytest.raises(EOFError):
            right.recv()
        right.close()

    def test_undecodable_frame_surfaces_as_eoferror(self):
        """A frame that fails to unpickle (version-skewed peer) must hit
        the pools' dead-connection path, not escape as a raw exception."""
        import struct

        a, b = socket.socketpair()
        junk = b"\x80\x05not-a-pickle"
        a.sendall(struct.pack(">Q", len(junk)) + junk)
        endpoint = SocketEndpoint(b)
        with pytest.raises(EOFError, match="undecodable frame"):
            endpoint.recv()
        endpoint.close()
        a.close()

    @pytest.mark.parametrize("transport_cls", [PipeTransport, SocketTransport])
    def test_launch_ready_echo_close(self, transport_cls):
        transport = transport_cls()
        try:
            handle = transport.launch(_echo_worker, ["payload-item"])
            assert handle.recv() == ("ready", ["payload-item"])
            handle.send(("echo", 42))
            assert handle.recv() == ("ok", {0: 42})
            handle.send(("close",))
            handle.join(timeout=10.0)
            assert not handle.is_alive()
            handle.close_endpoint()
        finally:
            transport.close()

    def test_socket_accept_timeout_surfaces_as_inference_error(self):
        transport = SocketTransport(accept_timeout=0.2, spawn_local=False)
        try:
            with pytest.raises(InferenceError, match="no worker connected"):
                transport.launch(_echo_worker, [])
        finally:
            transport.close()

    def test_crashed_local_spawn_fails_fast_with_its_exit_code(self):
        """Regression: a locally spawned worker that died before dialing
        in (import error, OOM kill) used to leave launch() blocked for
        the whole accept window and then report a timeout that looked
        exactly like a network problem.  launch() must notice the dead
        child promptly and name its exit code."""
        import time as _time

        transport = SocketTransport(accept_timeout=20.0)
        # Point spawned workers at a dead address: the child's connect()
        # fails immediately and it exits nonzero before any handshake,
        # while the master keeps listening on its real socket.
        probe = socket.create_server(("127.0.0.1", 0))
        dead_address = probe.getsockname()[:2]
        probe.close()
        transport.address = dead_address
        t0 = _time.monotonic()
        try:
            with pytest.raises(
                InferenceError,
                match=r"exited with code .* before connecting",
            ):
                transport.launch(_echo_worker, [])
        finally:
            transport.close()
        # Fast fail: well inside the 20s accept window.
        assert _time.monotonic() - t0 < 10.0

    def test_serve_worker_joins_an_external_master(self):
        """The cross-machine entry point: a thread plays the remote host."""
        transport = SocketTransport(spawn_local=False, authkey=b"shared-secret")
        worker = threading.Thread(
            target=serve_worker,
            args=(transport.address, b"shared-secret"),
            daemon=True,
        )
        worker.start()
        try:
            handle = transport.launch(_echo_worker, ["remote"])
            assert handle.process is None  # nothing spawned locally
            assert handle.recv() == ("ready", ["remote"])
            handle.send(("echo", "hi"))
            assert handle.recv() == ("ok", {0: "hi"})
            handle.send(("close",))
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            handle.close_endpoint()
        finally:
            transport.close()

    def test_unauthenticated_connector_is_rejected(self):
        """A peer without the key never gets a pickle frame: the master
        drops it and keeps waiting for the real worker."""
        transport = SocketTransport(accept_timeout=1.0, spawn_local=False)
        received = {}

        def impostor():
            sock = socket.create_connection(transport.address)
            try:
                sock.recv(64)  # the master's nonce
                sock.sendall(b"\x00" * 64)  # garbage digest + nonce
                received["extra"] = sock.recv(4096)  # master must hang up
            finally:
                sock.close()

        thread = threading.Thread(target=impostor, daemon=True)
        thread.start()
        try:
            with pytest.raises(InferenceError, match="no worker connected"):
                transport.launch(_echo_worker, ["secret payload"])
            thread.join(timeout=10.0)
            assert received.get("extra") == b""  # closed, nothing leaked
        finally:
            transport.close()

    def test_wrong_authkey_is_named_in_the_master_error(self):
        """A key mismatch must be diagnosable from the launch error alone:
        'no worker connected' with zero context used to look exactly like
        a dead worker host."""
        transport = SocketTransport(
            accept_timeout=1.0, spawn_local=False, authkey=b"right-key"
        )
        worker_error = {}

        def mismatched_worker():
            try:
                serve_worker(transport.address, b"wrong-key")
            except InferenceError as exc:
                worker_error["exc"] = exc

        worker = threading.Thread(target=mismatched_worker, daemon=True)
        worker.start()
        try:
            with pytest.raises(
                InferenceError, match="failed the HMAC handshake"
            ):
                transport.launch(_echo_worker, [])
            worker.join(timeout=10.0)
            assert transport.n_rejected == 1
            # ... and the worker side names the same likely cause.
            assert "wrong authkey" in str(worker_error["exc"])
        finally:
            transport.close()

    def test_truncated_hello_is_counted_and_named(self):
        """A peer that closes mid-handshake (crash, wrong protocol) is
        counted as a handshake failure, not reported as silence."""
        transport = SocketTransport(accept_timeout=1.0, spawn_local=False)

        def flaky_peer():
            sock = socket.create_connection(transport.address)
            sock.recv(64)          # master nonce arrives ...
            sock.sendall(b"\x01" * 5)  # ... truncated reply, then vanish
            sock.close()

        thread = threading.Thread(target=flaky_peer, daemon=True)
        thread.start()
        try:
            with pytest.raises(
                InferenceError,
                match=r"no worker connected.*1 connection\(s\) .* failed",
            ):
                transport.launch(_echo_worker, [])
            thread.join(timeout=10.0)
            assert transport.n_rejected == 1
        finally:
            transport.close()

    def test_worker_gets_a_clear_error_for_a_truncated_master_hello(self):
        """The worker side of the same failure: a master that hangs up
        mid-handshake must raise InferenceError, not a bare EOFError."""
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()[:2]

        def rude_master():
            conn, _ = listener.accept()
            conn.sendall(b"\x02" * 5)  # truncated nonce, then hang up
            conn.close()

        thread = threading.Thread(target=rude_master, daemon=True)
        thread.start()
        try:
            with pytest.raises(
                InferenceError, match="during the handshake"
            ):
                serve_worker(address, b"any-key", handshake_timeout=5.0)
            thread.join(timeout=10.0)
        finally:
            listener.close()

    def test_worker_refuses_a_rogue_master(self):
        """serve_worker with the wrong key must not run the shipped main,
        and must fail loudly so a misconfiguration is diagnosable."""
        transport = SocketTransport(
            accept_timeout=1.0, spawn_local=False, authkey=b"right-key"
        )
        worker_error = {}

        def run_worker():
            try:
                serve_worker(transport.address, b"wrong-key")
            except InferenceError as exc:
                worker_error["exc"] = exc

        worker = threading.Thread(target=run_worker, daemon=True)
        worker.start()
        try:
            with pytest.raises(InferenceError, match="no worker connected"):
                transport.launch(_echo_worker, [])
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            assert "exc" in worker_error  # loud failure, not a silent exit
        finally:
            transport.close()


class TestSocketPools:
    def test_sharded_sweeps_identical_over_pipe_and_socket(self, transport_setup):
        """Acceptance: a SocketTransport loopback run matches PipeTransport
        bitwise — the transport carries messages, never touches draws."""
        sim, trace = transport_setup
        rates = sim.true_rates()
        results = {}
        for name, transport in (
            ("pipe", PipeTransport()),
            ("socket", SocketTransport()),
        ):
            state = heuristic_initialize(trace, rates)
            sampler = GibbsSampler(
                trace, state, rates, random_state=7, shards=2,
                shard_workers=2, shard_transport=transport,
            )
            try:
                sampler.run(3)
                totals = sampler.service_totals()
                sampler.finish_shards()
                results[name] = (totals, state.arrival.copy(), state.departure.copy())
            finally:
                sampler.close()
                transport.close()
        np.testing.assert_array_equal(results["pipe"][0], results["socket"][0])
        np.testing.assert_array_equal(results["pipe"][1], results["socket"][1])
        np.testing.assert_array_equal(results["pipe"][2], results["socket"][2])

    def test_run_stem_sharded_over_socket_matches_serial(self, transport_setup):
        """The distributed StEM path keeps its bitwise contract on sockets."""
        sim, trace = transport_setup
        kwargs = dict(n_iterations=20, random_state=13, init_method="heuristic")
        serial = run_stem(trace, shards=2, **kwargs)
        # Drive the socket path through the estimator-facing API: a warm
        # pool over a socket transport hosting one run's shards.
        from repro.inference import WarmShardWorkerPool

        transport = SocketTransport()
        pool = WarmShardWorkerPool(2, transport=transport)
        try:
            pooled = run_stem(trace, shards=2, shard_pool=pool, **kwargs)
        finally:
            pool.close()
            transport.close()
        np.testing.assert_array_equal(serial.rates_history, pooled.rates_history)
