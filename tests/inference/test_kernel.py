"""Equivalence suite: the array sweep kernel vs the object reference path.

Three layers of agreement, from exact to statistical:

1. **Per-move pieces** — for every latent move of every fixture topology,
   the array kernel's bounds (L, U), knots, slopes and ``Z1..Z3``
   log-masses must match the object-path conditional to 1e-10.
2. **Per-move sampling** — driven by the same two uniforms, the vectorized
   inverse-CDF must return the object path's ``sample_uv`` value.
3. **Full sweeps** — with shared seeds the two kernels' random streams
   differ, so posterior means/variances must agree within Monte-Carlo
   error and the sampled-arrival distributions must pass a K-S test.
"""

import numpy as np
import pytest
from scipy import stats

from repro.errors import InferenceError
from repro.inference import GibbsSampler, heuristic_initialize
from repro.inference.conditional import (
    arrival_conditional,
    final_departure_conditional,
)
from repro.inference.kernel import (
    _invert_pieces,
    color_conflict_free_batches,
)
from repro.network import build_tandem_network, build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


def make_sampler(sim, fraction, seed, warm_sweeps=3):
    """An array-kernel sampler whose state has been warmed off the initializer."""
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=seed)
    rates = sim.true_rates()
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=seed, kernel="array")
    sampler.run(warm_sweeps)
    return sampler


def surviving(knots_row, values_row):
    """Entries of a fixed-width piece row whose piece has positive width."""
    widths = np.diff(knots_row)
    return values_row[widths > 0.0]


class TestPerMovePieceEquivalence:
    """Array-kernel rows == object-path conditionals, move for move."""

    @pytest.fixture(
        scope="class",
        params=[
            ("tandem", 0.2, 9),
            ("tandem", 0.5, 3),
            ("three-tier", 0.15, 13),
            ("three-tier", 0.3, 7),
        ],
        ids=lambda p: f"{p[0]}-{int(p[1] * 100)}pct",
    )
    def warm(self, request):
        topology, fraction, seed = request.param
        if topology == "tandem":
            net = build_tandem_network(4.0, [6.0, 8.0])
            sim = simulate_network(net, 150, random_state=101)
        else:
            net = build_three_tier_network(10.0, (1, 2, 4), service_rate=5.0)
            sim = simulate_network(net, 120, random_state=7)
        return make_sampler(sim, fraction, seed)

    def test_arrival_bounds_and_masses(self, warm):
        kernel = warm._array_kernel
        state = warm.state
        pieces = kernel.arrival_pieces(state.arrival, state.departure)
        rates = warm.rates
        assert pieces["events"].size > 0
        for i, e in enumerate(pieces["events"]):
            dist = arrival_conditional(state, int(e), rates)
            if dist is None:
                assert not pieces["valid"][i]
                continue
            assert pieces["valid"][i]
            lo, hi = dist.support
            assert pieces["lower"][i] == pytest.approx(lo, abs=1e-10)
            assert pieces["upper"][i] == pytest.approx(hi, abs=1e-10)
            np.testing.assert_allclose(
                surviving(pieces["knots"][i], pieces["knots"][i][1:]),
                np.asarray(dist.knots[1:]),
                atol=1e-10,
            )
            np.testing.assert_allclose(
                surviving(pieces["knots"][i], pieces["slopes"][i]),
                np.asarray(dist.slopes),
                atol=1e-10,
            )
            np.testing.assert_allclose(
                surviving(pieces["knots"][i], pieces["log_masses"][i]),
                np.asarray(dist.piece_log_masses),
                atol=1e-10,
            )
            assert pieces["log_z"][i] == pytest.approx(dist.log_z, abs=1e-10)

    def test_departure_bounds_and_masses(self, warm):
        kernel = warm._array_kernel
        state = warm.state
        pieces = kernel.departure_pieces(state.arrival, state.departure)
        rates = warm.rates
        for i, e in enumerate(pieces["events"]):
            dist = final_departure_conditional(state, int(e), rates)
            if dist is None:
                assert not pieces["valid"][i]
                continue
            assert pieces["valid"][i]
            assert pieces["lower"][i] == pytest.approx(dist.knots[0], abs=1e-10)
            if pieces["tail"][i]:
                assert np.isinf(dist.knots[-1])
                continue
            np.testing.assert_allclose(
                surviving(pieces["knots"][i], pieces["knots"][i][1:]),
                np.asarray(dist.knots[1:]),
                atol=1e-10,
            )
            np.testing.assert_allclose(
                surviving(pieces["knots"][i], pieces["log_masses"][i]),
                np.asarray(dist.piece_log_masses),
                atol=1e-10,
            )

    def test_arrival_sampling_matches_sample_uv(self, warm):
        """Same (u, v) -> same draw, for every valid arrival move."""
        kernel = warm._array_kernel
        state = warm.state
        pieces = kernel.arrival_pieces(state.arrival, state.departure)
        rates = warm.rates
        rng = np.random.default_rng(42)
        m = pieces["events"].size
        log_z = pieces["log_z"]
        for _ in range(5):
            u = rng.random(m)
            v = rng.random(m)
            probs = np.exp(pieces["log_masses"] - log_z[:, None])
            cum = np.cumsum(probs, axis=1)
            idx = np.minimum(np.sum(u[:, None] > cum, axis=1), 2)
            x = _invert_pieces(pieces["knots"], pieces["slopes"], idx, v)
            for i, e in enumerate(pieces["events"]):
                if not pieces["valid"][i]:
                    continue
                dist = arrival_conditional(state, int(e), rates)
                expected = dist.sample_uv(float(u[i]), float(v[i]))
                assert x[i] == pytest.approx(expected, rel=1e-9, abs=1e-12), (
                    f"move {i} (event {e}): {x[i]} != {expected}"
                )

    def test_native_arrival_draws_match_sample_uv(self, warm):
        """Fused native lowering == object path, move for move (the third
        backend of the equivalence suite; runs the pure-python loops when
        numba is absent, the compiled ones when present)."""
        from repro.inference.native import make_sweep_kernel

        twin = make_sweep_kernel(
            "native", warm.state, warm._arrival_cache,
            warm._departure_cache, warm.rates,
        )
        twin.native_active = True  # lowered arithmetic even without numba
        state = warm.state
        rates = warm.rates
        sel = np.arange(twin.a_ev.size)
        rng = np.random.default_rng(29)
        u = rng.random(sel.size)
        v = rng.random(sel.size)
        ev, x = twin._eval_arrival_chunk(state.arrival, state.departure, sel, u, v)
        ptr = 0
        for i, e in enumerate(twin.a_ev):
            dist = arrival_conditional(state, int(e), rates)
            if dist is None:
                continue
            assert ev[ptr] == e
            expected = dist.sample_uv(float(u[i]), float(v[i]))
            assert x[ptr] == pytest.approx(expected, rel=1e-9, abs=1e-10), (
                f"move {i} (event {e}): {x[ptr]} != {expected}"
            )
            ptr += 1
        assert ptr == ev.size
        twin.close()

    def test_native_departure_draws_match_sample_uv(self, warm):
        from repro.inference.native import make_sweep_kernel

        twin = make_sweep_kernel(
            "native", warm.state, warm._arrival_cache,
            warm._departure_cache, warm.rates,
        )
        twin.native_active = True
        state = warm.state
        rates = warm.rates
        sel = np.arange(twin.d_ev.size)
        rng = np.random.default_rng(31)
        u = rng.random(sel.size)
        v = rng.random(sel.size)
        ev, x = twin._eval_departure_chunk(state.arrival, state.departure, sel, u, v)
        ptr = 0
        for i, e in enumerate(twin.d_ev):
            dist = final_departure_conditional(state, int(e), rates)
            if dist is None:
                continue
            assert ev[ptr] == e
            if np.isinf(dist.knots[-1]):
                # Unbounded tail: the object path draws the exponential
                # from a generator, the batch paths invert it from v —
                # statistically the same draw, so compare against the
                # batch transform both backends document.
                expected = dist.knots[0] - np.log1p(-v[i]) / -dist.slopes[-1]
            else:
                expected = dist.sample_uv(float(u[i]), float(v[i]))
            assert x[ptr] == pytest.approx(expected, rel=1e-9, abs=1e-10), (
                f"move {i} (event {e}): {x[ptr]} != {expected}"
            )
            ptr += 1
        assert ptr == ev.size
        twin.close()

    def test_batches_are_conflict_free(self, warm):
        """No batch may contain a move that writes what another one touches."""
        kernel = warm._array_kernel
        writes, touched = kernel._arrival_slots()
        for batch in kernel.a_batches:
            written = set()
            for i in batch:
                written.update(writes[i])
            for i in batch:
                reads_others = set(touched[i]) - set(writes[i])
                assert not (reads_others & written), f"conflict inside batch {batch}"
            # Distinct writes within the batch.
            assert len(written) == sum(len(writes[i]) for i in batch)

    def test_batches_partition_all_moves(self, warm):
        kernel = warm._array_kernel
        for batches, total in (
            (kernel.a_batches, kernel.n_arrival_moves),
            (kernel.d_batches, kernel.n_departure_moves),
        ):
            seen = np.concatenate([b for b in batches]) if batches else np.empty(0)
            assert seen.size == total
            assert np.unique(seen).size == total


class TestColoring:
    def test_disjoint_moves_share_one_color(self):
        batches = color_conflict_free_batches(
            [(0,), (1,), (2,)], [(0, 10), (1, 11), (2, 12)]
        )
        assert len(batches) == 1
        assert batches[0].size == 3

    def test_chain_conflicts_alternate(self):
        # Move i writes slot i and reads slot i+1: neighbors conflict.
        writes = [(i,) for i in range(6)]
        touched = [(i, i + 1) for i in range(6)]
        batches = color_conflict_free_batches(writes, touched)
        assert len(batches) == 2
        for batch in batches:
            assert np.all(np.diff(batch) >= 2)

    def test_empty(self):
        assert color_conflict_free_batches([], []) == []


class TestSweepValidity:
    """Array sweeps must preserve every deterministic constraint."""

    def test_states_stay_valid_across_sweeps(self, three_tier_trace, three_tier_sim):
        rates = three_tier_sim.true_rates()
        state = heuristic_initialize(three_tier_trace, rates)
        sampler = GibbsSampler(three_tier_trace, state, rates, random_state=5,
                               kernel="array")
        for _ in range(10):
            stats_ = sampler.sweep()
            assert stats_.n_attempted == three_tier_trace.n_latent
            state.validate()

    def test_observed_values_never_move(self, tandem_trace, tandem_sim):
        rates = tandem_sim.true_rates()
        state = heuristic_initialize(tandem_trace, rates)
        sampler = GibbsSampler(tandem_trace, state, rates, random_state=0,
                               kernel="array")
        obs = np.flatnonzero(
            tandem_trace.arrival_observed & (tandem_trace.skeleton.seq != 0)
        )
        before = state.arrival[obs].copy()
        sampler.run(8)
        np.testing.assert_array_equal(state.arrival[obs], before)

    def test_threads_forwarded_and_bitwise_invariant(self):
        """threads=T reaches the unsharded kernel, the chunked path really
        runs (batches large enough to split), and no draw changes."""
        from repro.inference.kernel import _MIN_ROWS_PER_THREAD

        net = build_tandem_network(4.0, [6.0, 8.0, 9.0])
        sim = simulate_network(net, 800, random_state=3)
        trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=1)
        rates = sim.true_rates()
        runs = {}
        for threads in (1, 2):
            state = heuristic_initialize(trace, rates)
            sampler = GibbsSampler(trace, state, rates, random_state=21,
                                   kernel="array", threads=threads)
            assert sampler._array_kernel.threads == threads
            if threads > 1:
                # At least one batch must be big enough to actually chunk.
                assert any(
                    b.size >= threads * _MIN_ROWS_PER_THREAD
                    for b in sampler._array_kernel.a_batches
                )
            sampler.run(4)
            runs[threads] = (state.arrival.copy(), state.departure.copy())
        np.testing.assert_array_equal(runs[1][0], runs[2][0])
        np.testing.assert_array_equal(runs[1][1], runs[2][1])

    def test_rebuild_and_close_release_executor_threads(self):
        """Kernel rebuilds and sampler teardown shut thread pools down
        deterministically instead of leaking them to GC.

        Pre-fix, ``ArraySweepKernel`` had no ``close()``: a rebuilt
        sampler left every superseded kernel's lazily created
        ``ThreadPoolExecutor`` alive until garbage collection happened to
        run, and nothing ever shut down the last one.
        """
        import threading

        net = build_tandem_network(4.0, [6.0, 8.0, 9.0])
        sim = simulate_network(net, 800, random_state=3)
        trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=1)
        rates = sim.true_rates()
        baseline = threading.active_count()
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(trace, state, rates, random_state=21,
                               kernel="array", threads=2)
        sampler.sweep()
        # The chunked path must actually have spawned the pool.
        assert sampler._array_kernel._executor is not None
        superseded = []
        for _ in range(3):
            superseded.append(sampler._array_kernel)
            sampler.rebuild_blanket_cache()
            sampler.sweep()
        # Every superseded kernel's pool was shut down at rebuild time
        # (references held here, so GC cannot have cleaned up for us).
        for kernel in superseded:
            assert kernel._executor is None
        sampler.close()
        assert sampler._array_kernel._executor is None
        # shutdown(wait=True) joins the workers: back to baseline now.
        assert threading.active_count() == baseline
        # close() parks the kernel, it does not poison it: a later sweep
        # recreates the pool lazily and draws are unaffected.
        sampler.sweep()
        sampler.close()

    def test_reproducible_and_kernel_validated(self, tandem_trace, tandem_sim):
        rates = tandem_sim.true_rates()
        runs = []
        for _ in range(2):
            state = heuristic_initialize(tandem_trace, rates)
            sampler = GibbsSampler(tandem_trace, state, rates, random_state=11,
                                   kernel="array")
            sampler.run(5)
            runs.append(state.arrival.copy())
        np.testing.assert_array_equal(runs[0], runs[1])
        with pytest.raises(InferenceError):
            GibbsSampler(
                tandem_trace, heuristic_initialize(tandem_trace, rates),
                rates, kernel="simd",
            )

    def test_cache_rebuilds_after_queue_reassignment(self, three_tier_sim):
        """Path-MH structural moves must invalidate the array kernel too."""
        trace = TaskSampling(fraction=0.15).observe(
            three_tier_sim.events, random_state=13
        )
        rates = three_tier_sim.true_rates()
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(trace, state, rates, random_state=13, kernel="array")
        sampler.sweep()
        version = state.structure_version
        tier2 = [
            e for e in trace.latent_arrival_events
            if 2 <= int(state.queue[e]) <= 3
        ]
        moved = False
        for e in map(int, tier2):
            target = 3 if int(state.queue[e]) == 2 else 2
            old = int(state.queue[e])
            state.reassign_queue(e, target)
            if state.is_valid():
                moved = True
                break
            state.reassign_queue(e, old)
        assert moved and state.structure_version > version
        sampler.sweep()
        state.validate()
        assert sampler._array_kernel.structure_version == state.structure_version


@pytest.mark.slow
class TestStatisticalAgreement:
    """Both kernels target the same posterior (shared seeds, MC tolerance)."""

    @pytest.fixture(scope="class")
    def setup(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        sim = simulate_network(net, 250, random_state=17)
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=2)
        return sim, trace

    def _collect(self, trace, rates, kernel, seed, n_samples=120, thin=2):
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(trace, state, rates, random_state=seed, kernel=kernel)
        return sampler.collect(n_samples=n_samples, thin=thin, burn_in=40)

    def test_posterior_moments_agree(self, setup):
        sim, trace = setup
        rates = sim.true_rates()
        a = self._collect(trace, rates, "array", seed=1)
        o = self._collect(trace, rates, "object", seed=1)
        # Means within a few MC standard errors of each other.
        se = np.maximum(
            a.posterior_std_service(), o.posterior_std_service()
        ) / np.sqrt(a.n_samples / 4.0)  # /4: thinned chains still correlate
        gap = np.abs(a.posterior_mean_service() - o.posterior_mean_service())
        assert np.all(gap[1:] < 4.0 * se[1:] + 1e-12)
        np.testing.assert_allclose(
            a.posterior_std_service()[1:], o.posterior_std_service()[1:],
            rtol=0.5, atol=1e-3,
        )

    def test_ks_on_sampled_arrivals(self, setup):
        """K-S test on the posterior draws of individual latent arrivals."""
        sim, trace = setup
        rates = sim.true_rates()
        events = trace.latent_arrival_events[:8]
        samples = {}
        for kernel in ("array", "object"):
            state = heuristic_initialize(trace, rates)
            sampler = GibbsSampler(
                trace, state, rates, random_state=3, kernel=kernel
            )
            sampler.run(40)  # burn-in
            draws = np.empty((100, events.size))
            for s in range(draws.shape[0]):
                sampler.run(3)
                draws[s] = state.arrival[events]
            samples[kernel] = draws
        p_values = [
            stats.ks_2samp(samples["array"][:, j], samples["object"][:, j]).pvalue
            for j in range(events.size)
        ]
        # With 8 independent-ish tests, demand no catastrophic rejection
        # and a healthy median (both kernels draw from the same law).
        assert min(p_values) > 1e-4, p_values
        assert float(np.median(p_values)) > 0.05, p_values

    def test_ks_on_waiting_summaries(self, setup):
        # mean_waiting is a slowly mixing global summary; thin hard so the
        # K-S test's iid assumption approximately holds.
        sim, trace = setup
        rates = sim.true_rates()
        a = self._collect(trace, rates, "array", seed=5, n_samples=80, thin=8)
        o = self._collect(trace, rates, "object", seed=5, n_samples=80, thin=8)
        for q in range(1, a.mean_waiting.shape[1]):
            p = stats.ks_2samp(a.mean_waiting[:, q], o.mean_waiting[:, q]).pvalue
            assert p > 1e-3, f"queue {q}: K-S p={p}"
