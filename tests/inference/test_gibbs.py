"""Tests for the Gibbs sampler."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import GibbsSampler, heuristic_initialize
from repro.observation import TaskSampling
from repro.network import build_tandem_network
from repro.simulate import simulate_network


def make_sampler(sim, fraction=0.3, seed=0):
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=seed)
    rates = sim.true_rates()
    state = heuristic_initialize(trace, rates)
    return GibbsSampler(trace, state, rates, random_state=seed), trace


class TestMechanics:
    def test_sweep_counts_moves(self, tandem_sim):
        sampler, trace = make_sampler(tandem_sim)
        stats = sampler.sweep()
        assert stats.n_attempted == trace.n_latent
        assert stats.n_moves > 0
        assert sampler.n_sweeps_done == 1

    def test_observed_values_never_move(self, tandem_sim):
        sampler, trace = make_sampler(tandem_sim)
        obs = np.flatnonzero(trace.arrival_observed & (trace.skeleton.seq != 0))
        before = sampler.state.arrival[obs].copy()
        sampler.run(10)
        np.testing.assert_array_equal(sampler.state.arrival[obs], before)

    def test_state_remains_valid(self, three_tier_sim):
        sampler, _ = make_sampler(three_tier_sim, fraction=0.15)
        for _ in range(5):
            sampler.sweep()
            sampler.state.validate()

    def test_latent_values_actually_move(self, tandem_sim):
        sampler, trace = make_sampler(tandem_sim)
        lat = trace.latent_arrival_events
        before = sampler.state.arrival[lat].copy()
        sampler.run(3)
        assert np.mean(sampler.state.arrival[lat] != before) > 0.9

    def test_reproducible_with_seed(self, tandem_sim):
        a, _ = make_sampler(tandem_sim, seed=5)
        b, _ = make_sampler(tandem_sim, seed=5)
        a.run(5)
        b.run(5)
        np.testing.assert_array_equal(a.state.arrival, b.state.arrival)

    def test_rejects_nan_state(self, tandem_sim):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        with pytest.raises(InferenceError):
            GibbsSampler(trace, trace.skeleton, tandem_sim.true_rates())

    def test_rejects_bad_rates(self, tandem_sim):
        sampler, trace = make_sampler(tandem_sim)
        with pytest.raises(InferenceError):
            sampler.set_rates(np.array([1.0, -1.0, 2.0]))
        with pytest.raises(InferenceError):
            GibbsSampler(
                trace, sampler.state, np.array([1.0, 2.0]), random_state=0
            )

    def test_deterministic_scan_option(self, tandem_sim):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        rates = tandem_sim.true_rates()
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(trace, state, rates, random_state=0, shuffle=False)
        sampler.sweep()
        state.validate()


class TestBlanketCache:
    """The cached sweep must reproduce the uncached one draw for draw."""

    @staticmethod
    def _pair(sim, fraction=0.2, seed=9, **cached_kwargs):
        # kernel="object" pins the scalar reference path: the bitwise
        # cached-vs-uncached claim is about that path, and the array kernel
        # would make both sides trivially identical.
        trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=seed)
        rates = sim.true_rates()
        ref = GibbsSampler(
            trace, heuristic_initialize(trace, rates), rates,
            random_state=seed, cache_blankets=False, kernel="object",
        )
        cached = GibbsSampler(
            trace, heuristic_initialize(trace, rates), rates,
            random_state=seed, cache_blankets=True, kernel="object", **cached_kwargs,
        )
        return ref, cached

    def test_cached_sweep_bitwise_identical(self, tandem_sim):
        ref, cached = self._pair(tandem_sim)
        for _ in range(8):
            s_ref, s_cached = ref.sweep(), cached.sweep()
            assert (s_ref.n_moves, s_ref.n_skipped) == (
                s_cached.n_moves, s_cached.n_skipped
            )
        np.testing.assert_array_equal(ref.state.arrival, cached.state.arrival)
        np.testing.assert_array_equal(ref.state.departure, cached.state.departure)

    def test_cached_sweep_bitwise_identical_three_tier(self, three_tier_sim):
        ref, cached = self._pair(three_tier_sim, fraction=0.15, seed=13)
        ref.run(5)
        cached.run(5)
        np.testing.assert_array_equal(ref.state.arrival, cached.state.arrival)
        np.testing.assert_array_equal(ref.state.departure, cached.state.departure)

    def test_cached_sweep_identical_after_rate_update(self, tandem_sim):
        """set_rates must refresh the cached per-move rate lookups."""
        ref, cached = self._pair(tandem_sim)
        new_rates = tandem_sim.true_rates() * 1.7
        for sampler in (ref, cached):
            sampler.run(2)
            sampler.set_rates(new_rates)
            sampler.run(3)
        np.testing.assert_array_equal(ref.state.arrival, cached.state.arrival)
        np.testing.assert_array_equal(ref.state.departure, cached.state.departure)

    def test_batched_draws_deterministic_and_valid(self, tandem_sim):
        _, a = self._pair(tandem_sim, batch_draws=True)
        _, b = self._pair(tandem_sim, batch_draws=True)
        a.run(6)
        b.run(6)
        np.testing.assert_array_equal(a.state.arrival, b.state.arrival)
        a.state.validate()

    def test_cache_rebuilds_after_queue_reassignment(self, three_tier_sim):
        """Interleaved path-MH moves must invalidate the blanket cache."""
        trace = TaskSampling(fraction=0.15).observe(
            three_tier_sim.events, random_state=13
        )
        rates = three_tier_sim.true_rates()
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(trace, state, rates, random_state=13)
        sampler.sweep()
        version = state.structure_version
        # Move one latent event to a sibling queue of its tier, as the
        # path resampler would.
        tier2 = [
            e for e in trace.latent_arrival_events
            if 2 <= int(state.queue[e]) <= 3
        ]
        moved = False
        for e in map(int, tier2):
            target = 3 if int(state.queue[e]) == 2 else 2
            old = int(state.queue[e])
            state.reassign_queue(e, target)
            if state.is_valid():
                moved = True
                break
            state.reassign_queue(e, old)  # reject, as the path MH would
        assert moved
        assert state.structure_version > version
        sampler.sweep()
        state.validate()
        assert sampler._arrival_cache.structure_version == state.structure_version


class TestCollect:
    def test_shapes(self, tandem_sim):
        sampler, _ = make_sampler(tandem_sim)
        samples = sampler.collect(n_samples=6, thin=2, burn_in=3)
        n_queues = tandem_sim.events.n_queues
        assert samples.mean_service.shape == (6, n_queues)
        assert samples.mean_waiting.shape == (6, n_queues)
        assert samples.log_joint.shape == (6,)
        assert samples.n_samples == 6
        assert sampler.n_sweeps_done == 3 + 6 * 2

    def test_posterior_summaries_finite(self, tandem_sim):
        sampler, _ = make_sampler(tandem_sim)
        samples = sampler.collect(n_samples=5, burn_in=2)
        assert np.all(np.isfinite(samples.posterior_mean_service()))
        assert np.all(np.isfinite(samples.posterior_mean_waiting()))
        assert np.all(samples.posterior_std_service() >= 0.0)

    def test_invalid_schedule_rejected(self, tandem_sim):
        sampler, _ = make_sampler(tandem_sim)
        with pytest.raises(InferenceError):
            sampler.collect(n_samples=0)


class TestFullObservationDegenerate:
    def test_no_moves_with_full_data(self, tandem_sim):
        sampler, trace = make_sampler(tandem_sim, fraction=1.0)
        assert sampler.n_latent == 0
        stats = sampler.sweep()
        assert stats.n_attempted == 0
        np.testing.assert_allclose(
            sampler.state.arrival, tandem_sim.events.arrival
        )


class TestPosteriorQuality:
    """With true rates fixed, posterior means must track ground truth."""

    def test_service_recovery_under_load(self):
        net = build_tandem_network(4.5, [5.0, 6.0])  # rho 0.9, 0.75
        sim = simulate_network(net, 300, random_state=51)
        trace = TaskSampling(fraction=0.15).observe(sim.events, random_state=1)
        rates = sim.true_rates()
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(trace, state, rates, random_state=2)
        samples = sampler.collect(n_samples=30, burn_in=30)
        est = samples.posterior_mean_service()
        true = sim.events.mean_service_by_queue()
        # Within 25% on every queue at 15% observation.
        np.testing.assert_allclose(est[1:], true[1:], rtol=0.25)

    def test_waiting_recovery_under_overload(self, three_tier_sim):
        trace = TaskSampling(fraction=0.15).observe(
            three_tier_sim.events, random_state=3
        )
        rates = three_tier_sim.true_rates()
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(trace, state, rates, random_state=4)
        samples = sampler.collect(n_samples=20, burn_in=20)
        est = samples.posterior_mean_waiting()
        true = three_tier_sim.events.mean_waiting_by_queue()
        # The overloaded queue's (large) waiting time is recovered well.
        assert est[1] == pytest.approx(true[1], rel=0.2)
