"""Sharding equivalence harness.

Four layers of guarantees, from exact to statistical:

1. **Plan soundness** — partitions cover the tasks, the reported cut is
   the recomputed cut, interior moves' Markov blankets never cross a
   shard cut, and interior+boundary moves partition the latent set.
2. **Bitwise reductions** — at ``shards=1`` the sharded engine consumes
   the caller's generator exactly like the plain array kernel (identical
   draws); at any shard count the scan is deterministic at a fixed seed;
   the in-process and worker-pool executions are bitwise identical, and a
   pooled run continues bitwise after :meth:`finish_shards`.
3. **Statistical equivalence** — sharded sweeps target the same posterior
   as unsharded sweeps: K-S agreement of posterior rate/service draws for
   ``shards in {2, 3}`` on the three-tier fixture.
4. **Lifecycle** — ``run_stem(persistent_workers=2, shards=2)`` recovers
   seeded rates like the serial path does, and a shard worker raising
   :class:`~repro.errors.InferenceError` takes the pool down cleanly.
"""

import numpy as np
import pytest
from scipy import stats

from repro.errors import InferenceError
from repro.inference import (
    GibbsSampler,
    boundary_event_sets,
    build_shard_plan,
    heuristic_initialize,
    partition_tasks,
    run_stem,
    task_interaction_graph,
)
from repro.inference.shard import ShardedSweepEngine
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network
from repro.webapp import WebAppConfig, generate_webapp_trace


@pytest.fixture(scope="module")
def shard_setup():
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, 150, random_state=101)
    trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=3)
    return sim, trace


class TestPartition:
    def test_covers_tasks_disjointly(self, shard_setup):
        sim, _ = shard_setup
        part = partition_tasks(sim.events, 4)
        seen = [t for block in part.shards for t in block]
        assert sorted(seen) == sim.events.task_ids
        assert len(seen) == len(set(seen))
        assert part.n_shards == 4

    def test_cut_size_matches_recount(self, shard_setup):
        sim, _ = shard_setup
        part = partition_tasks(sim.events, 3)
        weights = task_interaction_graph(sim.events)
        cut = sum(
            w
            for (a, b), w in weights.items()
            if part.assignment[a] != part.assignment[b]
        )
        assert part.cut_size == cut

    def test_refinement_does_not_worsen_cut(self, shard_setup):
        sim, _ = shard_setup
        refined = partition_tasks(sim.events, 3, refine_passes=2)
        unrefined = partition_tasks(sim.events, 3, refine_passes=0)
        assert refined.cut_size <= unrefined.cut_size

    def test_balance_bounds_hold(self, shard_setup):
        sim, _ = shard_setup
        part = partition_tasks(sim.events, 4, balance=0.3)
        n = sim.events.n_tasks
        sizes = [len(block) for block in part.shards]
        assert min(sizes) >= int(np.floor(0.7 * n / 4))
        assert max(sizes) <= int(np.ceil(1.3 * n / 4))

    def test_shard_count_clamped_to_tasks(self, shard_setup):
        sim, _ = shard_setup
        part = partition_tasks(sim.events, 10**6)
        assert part.n_shards == sim.events.n_tasks

    def test_deterministic(self, shard_setup):
        sim, _ = shard_setup
        a = partition_tasks(sim.events, 3)
        b = partition_tasks(sim.events, 3)
        assert a.shards == b.shards and a.cut_size == b.cut_size

    def test_validation(self, shard_setup):
        sim, _ = shard_setup
        with pytest.raises(InferenceError):
            partition_tasks(sim.events, 0)
        with pytest.raises(InferenceError):
            partition_tasks(sim.events, 2, balance=1.5)


class TestShardPlan:
    def test_moves_partitioned(self, shard_setup):
        sim, trace = shard_setup
        part = partition_tasks(sim.events, 3)
        state = heuristic_initialize(trace, sim.true_rates())
        plan = build_shard_plan(trace, state, part)
        assert plan.n_interior + plan.n_boundary == trace.n_latent
        got_arr = np.sort(
            np.concatenate([*plan.interior_arrivals, plan.boundary_arrivals])
        )
        np.testing.assert_array_equal(
            got_arr, np.sort(trace.latent_arrival_events)
        )

    def test_interior_blankets_stay_in_shard(self, shard_setup):
        """The invariant that makes concurrent shard sweeps exact."""
        sim, trace = shard_setup
        part = partition_tasks(sim.events, 3)
        state = heuristic_initialize(trace, sim.true_rates())
        plan = build_shard_plan(trace, state, part)
        sv = plan.shard_of_event
        for s, moves in enumerate(plan.interior_arrivals):
            for e in map(int, moves):
                p = int(state.pi[e])
                partners = [state.rho[e], state.rho_inv[e],
                            state.rho[p], state.rho_inv[p]]
                for n in map(int, partners):
                    if n >= 0:
                        assert sv[n] == s, f"arrival move {e} leaks to {n}"
        for s, moves in enumerate(plan.interior_departures):
            for e in map(int, moves):
                for n in (int(state.rho[e]), int(state.rho_inv[e])):
                    if n >= 0:
                        assert sv[n] == s, f"departure move {e} leaks to {n}"

    def test_boundary_reads_cover_blankets(self, shard_setup):
        sim, trace = shard_setup
        part = partition_tasks(sim.events, 2)
        state = heuristic_initialize(trace, sim.true_rates())
        plan = build_shard_plan(trace, state, part)
        reads = set(plan.boundary_reads.tolist())
        for e in map(int, plan.boundary_arrivals):
            p = int(state.pi[e])
            for n in (e, p, state.rho[e], state.rho_inv[e],
                      state.rho[p], state.rho_inv[p]):
                if int(n) >= 0:
                    assert int(n) in reads

    def test_boundary_sets_symmetric(self, shard_setup):
        sim, _ = shard_setup
        part = partition_tasks(sim.events, 3)
        sets = boundary_event_sets(sim.events, part)
        for (a, b), members in sets.items():
            assert (b, a) in sets
            sv = part.event_shards(sim.events)
            mirror = set(sets[(b, a)].tolist())
            # Every (a, b) boundary event has a queue neighbor in (b, a).
            for e in map(int, members):
                assert sv[e] == a
                neighbors = {int(sim.events.rho[e]), int(sim.events.rho_inv[e])}
                assert neighbors & mirror


class TestBitwiseEquivalence:
    def test_shards1_engine_matches_plain_array_kernel(self, shard_setup):
        """The fast-lane smoke: shards=1 is the plain kernel, draw for draw."""
        sim, trace = shard_setup
        rates = sim.true_rates()
        plain_state = heuristic_initialize(trace, rates)
        plain = GibbsSampler(
            trace, plain_state, rates, random_state=11, kernel="array"
        )
        plain.run(4)
        engine_state = heuristic_initialize(trace, rates)
        engine = ShardedSweepEngine(trace, engine_state, rates, n_shards=1)
        rng = np.random.default_rng(11)
        for _ in range(4):
            engine.sweep(engine_state, rng)
        np.testing.assert_array_equal(plain_state.arrival, engine_state.arrival)
        np.testing.assert_array_equal(plain_state.departure, engine_state.departure)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_deterministic_at_fixed_seed(self, shard_setup, shards):
        sim, trace = shard_setup
        rates = sim.true_rates()
        runs = []
        for _ in range(2):
            state = heuristic_initialize(trace, rates)
            sampler = GibbsSampler(
                trace, state, rates, random_state=42, shards=shards
            )
            for _ in range(5):
                sweep_stats = sampler.sweep()
                assert sweep_stats.n_attempted == trace.n_latent
            state.validate()
            runs.append((state.arrival.copy(), state.departure.copy()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_pool_matches_serial_bitwise(self, shard_setup, workers):
        sim, trace = shard_setup
        rates = sim.true_rates()
        serial_state = heuristic_initialize(trace, rates)
        serial = GibbsSampler(trace, serial_state, rates, random_state=7, shards=2)
        pooled_state = heuristic_initialize(trace, rates)
        pooled = GibbsSampler(
            trace, pooled_state, rates, random_state=7, shards=2,
            shard_workers=workers,
        )
        try:
            for _ in range(5):
                serial.sweep()
                pooled.sweep()
            np.testing.assert_array_equal(
                serial.service_totals(), pooled.service_totals()
            )
            pooled.finish_shards()
            np.testing.assert_array_equal(serial_state.arrival, pooled_state.arrival)
            np.testing.assert_array_equal(
                serial_state.departure, pooled_state.departure
            )
            # The evolved shard streams came home: continuation matches too.
            serial.sweep()
            pooled.sweep()
            np.testing.assert_array_equal(serial_state.arrival, pooled_state.arrival)
        finally:
            pooled.close()

    def test_service_totals_match_unsharded_values(self, shard_setup):
        sim, trace = shard_setup
        rates = sim.true_rates()
        state = heuristic_initialize(trace, rates)
        sharded = GibbsSampler(trace, state, rates, random_state=5, shards=3)
        sharded.run(3)
        from repro.inference.mstep import chain_service_totals

        np.testing.assert_allclose(
            sharded.service_totals(), chain_service_totals(state),
            rtol=1e-12, atol=1e-12,
        )

    def test_threads_do_not_change_draws(self, shard_setup):
        sim, trace = shard_setup
        rates = sim.true_rates()
        results = []
        for threads in (1, 2):
            state = heuristic_initialize(trace, rates)
            GibbsSampler(
                trace, state, rates, random_state=9, shards=2, threads=threads
            ).run(4)
            results.append(state.arrival.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_validation(self, shard_setup):
        sim, trace = shard_setup
        rates = sim.true_rates()
        state = heuristic_initialize(trace, rates)
        with pytest.raises(InferenceError):
            GibbsSampler(trace, state, rates, shards=0)
        with pytest.raises(InferenceError):
            GibbsSampler(trace, state, rates, shards=2, kernel="object")
        with pytest.raises(InferenceError):
            GibbsSampler(trace, state, rates, shards=1, shard_workers=2)
        with pytest.raises(InferenceError):
            GibbsSampler(trace, state, rates, threads=0)


@pytest.mark.slow
class TestStatisticalAgreement:
    """Sharded and unsharded sweeps target the same posterior."""

    @pytest.fixture(scope="class")
    def setup(self, three_tier_sim):
        trace = TaskSampling(fraction=0.15).observe(
            three_tier_sim.events, random_state=5
        )
        return three_tier_sim, trace

    def _collect(self, trace, rates, shards, seed, n_samples=110, thin=2):
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(
            trace, state, rates, random_state=seed, shards=shards
        )
        return sampler.collect(n_samples=n_samples, thin=thin, burn_in=40)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_ks_on_sampled_arrivals(self, setup, shards):
        """K-S on posterior draws of individual latent arrival times.

        Individual arrivals mix fast (unlike whole-trace summaries, whose
        autocorrelation defeats the K-S iid assumption at feasible sample
        sizes), so this is the sharpest statistical comparison available —
        the same design the kernel equivalence suite uses.
        """
        sim, trace = setup
        rates = sim.true_rates()
        events = trace.latent_arrival_events[:8]
        samples = {}
        for label, n_shards, seed in (("base", 1, 3), ("shard", shards, 4)):
            state = heuristic_initialize(trace, rates)
            sampler = GibbsSampler(
                trace, state, rates, random_state=seed, shards=n_shards
            )
            sampler.run(40)  # burn-in
            draws = np.empty((100, events.size))
            for s in range(draws.shape[0]):
                sampler.run(3)
                draws[s] = state.arrival[events]
            samples[label] = draws
        p_values = [
            stats.ks_2samp(samples["base"][:, j], samples["shard"][:, j]).pvalue
            for j in range(events.size)
        ]
        assert min(p_values) > 1e-4, p_values
        assert float(np.median(p_values)) > 0.05, p_values

    @pytest.mark.parametrize("shards", [2, 3])
    def test_posterior_moments_agree(self, setup, shards):
        sim, trace = setup
        rates = sim.true_rates()
        base = self._collect(trace, rates, 1, seed=3)
        shard = self._collect(trace, rates, shards, seed=4)
        se = np.maximum(
            base.posterior_std_service(), shard.posterior_std_service()
        ) / np.sqrt(base.n_samples / 4.0)
        gap = np.abs(
            base.posterior_mean_service() - shard.posterior_mean_service()
        )
        ok = np.isfinite(gap[1:])
        assert np.all(gap[1:][ok] < 4.0 * se[1:][ok] + 1e-12)


class TestShardPoolLifecycle:
    def test_worker_inference_error_shuts_down_cleanly(self, shard_setup):
        """A worker-side InferenceError surfaces and kills every worker."""
        sim, trace = shard_setup
        rates = sim.true_rates()
        state = heuristic_initialize(trace, rates)
        sampler = GibbsSampler(
            trace, state, rates, random_state=3, shards=2, shard_workers=2
        )
        engine = sampler._shard_engine
        pool = engine._pool
        sampler.sweep()
        bad = rates.copy()
        bad[1] = -bad[1]
        inbound = {
            s: (
                state.arrival[engine._inbound_full[s]].copy(),
                state.departure[engine._inbound_full[s]].copy(),
            )
            for s in range(engine.n_shards)
        }
        with pytest.raises(InferenceError, match="shard sweep worker failed"):
            # Worker-side rate validation rejects the negative rate.
            pool.sweep(bad, 1, inbound)
        assert pool.closed
        for handle in pool._handles:
            assert not handle.is_alive()
        pool.close()  # idempotent
        with pytest.raises(InferenceError, match="closed"):
            pool.sweep(rates, 1, inbound)

    @pytest.mark.slow
    def test_run_stem_sharded_pool_recovers_webapp_rates(self):
        """The integration contract: persistent_workers=2 + shards=2 on a
        censored webapp trace estimates like the serial path."""
        sim = generate_webapp_trace(WebAppConfig(n_requests=220), random_state=21)
        trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=2)
        kwargs = dict(
            n_iterations=60, random_state=17, init_method="heuristic"
        )
        serial = run_stem(trace, shards=2, **kwargs)
        pooled = run_stem(trace, shards=2, persistent_workers=2, **kwargs)
        # The two paths are the same algorithm — bitwise, not just close:
        # "within the same tolerance as serial" is an identity here.
        np.testing.assert_array_equal(serial.rates_history, pooled.rates_history)
        truth = sim.true_rates()
        counts = sim.events.events_per_queue()
        checked = 0
        for q in range(truth.size):
            if not np.isfinite(truth[q]) or counts[q] < 50:
                continue  # sparse queues estimate noisily at any shard count
            rel = pooled.rates[q] / truth[q]
            assert 0.5 < rel < 2.0, (
                f"queue {q}: estimated {pooled.rates[q]:.3g} vs true "
                f"{truth[q]:.3g}"
            )
            checked += 1
        assert checked >= 3
        pooled.sampler.state.validate()
        pooled.sampler.sweep()  # detached and still sweepable
