"""Tests for the parallel multi-chain inference engine."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import (
    GibbsSampler,
    MultiChainSampler,
    chain_seed_sequences,
    heuristic_initialize,
)
from repro.inference.chains import run_chain


class TestSeeding:
    def test_one_pair_per_chain(self):
        pairs = chain_seed_sequences(123, 5)
        assert len(pairs) == 5
        assert all(len(p) == 2 for p in pairs)

    def test_same_master_same_children(self):
        a = chain_seed_sequences(9, 3)
        b = chain_seed_sequences(9, 3)
        for (ai, asw), (bi, bsw) in zip(a, b):
            assert ai.generate_state(4).tolist() == bi.generate_state(4).tolist()
            assert asw.generate_state(4).tolist() == bsw.generate_state(4).tolist()

    def test_chains_are_distinct(self):
        pairs = chain_seed_sequences(9, 3)
        states = [tuple(sweep.generate_state(4).tolist()) for _, sweep in pairs]
        assert len(set(states)) == 3

    def test_generator_stream_not_consumed(self):
        """Deriving chain seeds must not perturb a caller's generator."""
        shared = np.random.default_rng(5)
        expected = np.random.default_rng(5).random(3)
        chain_seed_sequences(shared, 4)
        np.testing.assert_array_equal(shared.random(3), expected)


class TestMultiChainSampler:
    def test_rejects_bad_config(self, tandem_sim, tandem_trace):
        with pytest.raises(InferenceError):
            MultiChainSampler(tandem_trace, tandem_sim.true_rates(), n_chains=0)
        with pytest.raises(InferenceError):
            MultiChainSampler(
                tandem_trace, tandem_sim.true_rates(), n_chains=2, jitter=-1.0
            )

    def test_overdispersed_init_methods(self, tandem_sim, tandem_trace):
        mc = MultiChainSampler(
            tandem_trace, tandem_sim.true_rates(), n_chains=4, random_state=0
        )
        assert mc.init_methods == [
            "heuristic", "lp", "heuristic-jitter", "heuristic-jitter",
        ]

    def test_lp_skipped_on_large_traces(self, tandem_sim, tandem_trace):
        mc = MultiChainSampler(
            tandem_trace, tandem_sim.true_rates(), n_chains=3,
            random_state=0, lp_size_limit=1,
        )
        assert mc.init_methods == [
            "heuristic", "heuristic-jitter", "heuristic-jitter",
        ]

    def test_shapes_and_pooling(self, tandem_sim, tandem_trace):
        mc = MultiChainSampler(
            tandem_trace, tandem_sim.true_rates(), n_chains=3, random_state=1
        )
        post = mc.collect(n_samples=8, burn_in=4)
        n_queues = tandem_trace.skeleton.n_queues
        assert post.n_chains == 3
        assert post.n_samples == 8
        assert post.stacked("waiting").shape == (3, 8, n_queues)
        assert post.stacked("log_joint").shape == (3, 8)
        pooled = post.pooled()
        assert pooled.n_samples == 24
        assert np.all(np.isfinite(pooled.posterior_mean_waiting()))

    def test_same_seed_different_workers_identical(self, tandem_sim, tandem_trace):
        """Bit-reproducibility at any worker count (the seeding contract)."""
        rates = tandem_sim.true_rates()
        serial = MultiChainSampler(
            tandem_trace, rates, n_chains=3, random_state=42
        ).collect(n_samples=5, burn_in=3, workers=None)
        pooled2 = MultiChainSampler(
            tandem_trace, rates, n_chains=3, random_state=42
        ).collect(n_samples=5, burn_in=3, workers=2)
        pooled3 = MultiChainSampler(
            tandem_trace, rates, n_chains=3, random_state=42
        ).collect(n_samples=5, burn_in=3, workers=3)
        for other in (pooled2, pooled3):
            for a, b in zip(serial.chains, other.chains):
                np.testing.assert_array_equal(a.mean_service, b.mean_service)
                np.testing.assert_array_equal(a.mean_waiting, b.mean_waiting)
                np.testing.assert_array_equal(a.log_joint, b.log_joint)

    def test_single_chain_matches_gibbs_collect(self, tandem_sim, tandem_trace):
        """K=1 is exactly one GibbsSampler.collect run at the spawned seed."""
        rates = tandem_sim.true_rates()
        mc = MultiChainSampler(
            tandem_trace, rates, n_chains=1, random_state=7, batch_draws=True
        )
        post = mc.collect(n_samples=6, thin=2, burn_in=3)
        _, sweep_seed = chain_seed_sequences(7, 1)[0]
        reference = GibbsSampler(
            tandem_trace,
            heuristic_initialize(tandem_trace, rates),
            rates,
            random_state=sweep_seed,
            batch_draws=True,
        ).collect(n_samples=6, thin=2, burn_in=3)
        np.testing.assert_array_equal(
            post.chains[0].mean_service, reference.mean_service
        )
        np.testing.assert_array_equal(
            post.chains[0].mean_waiting, reference.mean_waiting
        )
        np.testing.assert_array_equal(post.chains[0].log_joint, reference.log_joint)

    def test_jittered_chains_start_apart_but_agree_eventually(
        self, tandem_sim, tandem_trace
    ):
        """Over-dispersion: chains start from different latent states."""
        rates = tandem_sim.true_rates()
        mc = MultiChainSampler(tandem_trace, rates, n_chains=3, random_state=3)
        specs = mc.chain_specs(n_samples=1, burn_in=0)
        from repro.inference.chains import _initialize_chain

        states = [_initialize_chain(spec)[1] for spec in specs]
        lat = tandem_trace.latent_arrival_events
        assert not np.array_equal(states[0].arrival[lat], states[2].arrival[lat])

    def test_diagnostics_per_queue(self, tandem_sim, tandem_trace):
        mc = MultiChainSampler(
            tandem_trace, tandem_sim.true_rates(), n_chains=3, random_state=5
        )
        post = mc.collect(n_samples=20, burn_in=10)
        r_hat = post.split_r_hat("waiting")
        ess = post.ess("waiting")
        n_queues = tandem_trace.skeleton.n_queues
        assert r_hat.shape == (n_queues,)
        assert ess.shape == (n_queues,)
        # Real queues have events; diagnostics must come out finite.
        assert np.all(np.isfinite(r_hat[1:]))
        assert np.all(ess[1:] >= 1.0)
        assert np.isfinite(post.max_r_hat("waiting"))
        assert "split-R^hat" in post.summary()

    def test_run_chain_is_self_contained(self, tandem_sim, tandem_trace):
        """The worker entry point runs from a pickled-style spec alone."""
        import pickle

        mc = MultiChainSampler(
            tandem_trace, tandem_sim.true_rates(), n_chains=2, random_state=8
        )
        spec = mc.chain_specs(n_samples=3, burn_in=1)[1]
        clone = pickle.loads(pickle.dumps(spec))
        a = run_chain(spec)
        b = run_chain(clone)
        np.testing.assert_array_equal(a.mean_waiting, b.mean_waiting)
