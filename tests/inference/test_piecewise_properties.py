"""Property-based tests for the piecewise-exponential machinery.

Hypothesis drives random knots/slopes through both the scalar
:class:`~repro.inference.piecewise.PiecewiseExponential` and the vectorized
log-mass kernel, checking the invariants the Gibbs sampler relies on:
normalization, CDF monotonicity, ppf∘cdf ≈ id, agreement with ``scipy``
quadrature on moderate slopes, and survival of the extreme ``rate * width``
overflow regime the module docstring promises.  A regression class pins the
scalar/vector agreement of ``log ∫ exp`` at the ``_FLAT_EPS`` flat-piece
transition.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import integrate

from repro.inference.piecewise import (
    _FLAT_EPS,
    PiecewiseExponential,
    _log_integral_exp,
    log_integral_exp,
)

# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------


@st.composite
def moderate_densities(draw):
    """Knots/slopes with |slope * width| <= ~30: quadrature-friendly."""
    k = draw(st.integers(min_value=1, max_value=4))
    start = draw(st.floats(min_value=-50.0, max_value=50.0))
    widths = [
        draw(st.floats(min_value=1e-3, max_value=5.0)) for _ in range(k)
    ]
    knots = np.concatenate([[start], start + np.cumsum(widths)])
    slopes = [draw(st.floats(min_value=-6.0, max_value=6.0)) for _ in range(k)]
    return list(knots), slopes


@st.composite
def extreme_densities(draw):
    """The overflow regime: |slope * width| up to ~1e6 either sign."""
    k = draw(st.integers(min_value=1, max_value=3))
    start = draw(st.floats(min_value=-10.0, max_value=10.0))
    widths = [
        draw(st.floats(min_value=1e-6, max_value=100.0)) for _ in range(k)
    ]
    knots = np.concatenate([[start], start + np.cumsum(widths)])
    slopes = [
        draw(st.floats(min_value=-1e4, max_value=1e4)) for _ in range(k)
    ]
    return list(knots), slopes


slope_elems = st.one_of(
    st.floats(min_value=-1e8, max_value=1e8),
    st.floats(min_value=-1e-10, max_value=1e-10),
)
width_elems = st.one_of(
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e-8),
)


# ----------------------------------------------------------------------
# PiecewiseExponential invariants.
# ----------------------------------------------------------------------


class TestDensityInvariants:
    @settings(max_examples=60, deadline=None)
    @given(moderate_densities())
    def test_normalization(self, case):
        knots, slopes = case
        dist = PiecewiseExponential(knots, slopes)
        assert dist.piece_probabilities().sum() == pytest.approx(1.0, abs=1e-10)
        assert math.isfinite(dist.log_z)

    @settings(max_examples=60, deadline=None)
    @given(moderate_densities())
    def test_cdf_monotone_and_bounded(self, case):
        knots, slopes = case
        dist = PiecewiseExponential(knots, slopes)
        xs = np.linspace(knots[0], knots[-1], 41)
        values = [dist.cdf(float(x)) for x in xs]
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[-1] == pytest.approx(1.0, abs=1e-9)
        assert all(0.0 <= c <= 1.0 for c in values)
        assert all(b - a >= -1e-12 for a, b in zip(values, values[1:]))

    @settings(max_examples=60, deadline=None)
    @given(moderate_densities(), st.floats(min_value=1e-4, max_value=1 - 1e-4))
    def test_cdf_of_ppf_is_identity(self, case, q):
        knots, slopes = case
        dist = PiecewiseExponential(knots, slopes)
        assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-8)

    @settings(max_examples=60, deadline=None)
    @given(moderate_densities(), st.floats(min_value=0.02, max_value=0.98))
    def test_ppf_of_cdf_is_identity(self, case, frac):
        knots, slopes = case
        dist = PiecewiseExponential(knots, slopes)
        x = knots[0] + frac * (knots[-1] - knots[0])
        q = dist.cdf(x)
        # Only invertible where the CDF is not numerically flat — globally
        # (q off the saturated tails) *and* locally: a steep decaying piece
        # upstream can leave the density at x below double-precision
        # resolution (e.g. slope -6 over width 4.5 => e^-27 relative mass),
        # and no inverse can localize x where the CDF does not move.
        scale = knots[-1] - knots[0]
        tol = 1e-6 * scale + 1e-9
        locally_resolvable = dist.cdf(min(x + tol, knots[-1])) - dist.cdf(
            max(x - tol, knots[0])
        ) > 1e-11
        if 1e-12 < q < 1.0 - 1e-12 and locally_resolvable:
            assert dist.ppf(q) == pytest.approx(x, abs=tol)

    @settings(max_examples=40, deadline=None)
    @given(moderate_densities())
    def test_log_z_matches_quadrature(self, case):
        knots, slopes = case
        dist = PiecewiseExponential(knots, slopes)

        def phi(x):
            acc = 0.0
            for i, c in enumerate(slopes):
                lo, hi = knots[i], knots[i + 1]
                if x <= hi:
                    return acc + c * (x - lo)
                acc += c * (hi - lo)
            return acc

        z, _ = integrate.quad(
            lambda x: np.exp(phi(x)), knots[0], knots[-1],
            points=knots[1:-1], limit=200,
        )
        if z > 0.0 and math.isfinite(z):
            assert dist.log_z == pytest.approx(math.log(z), abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        extreme_densities(),
        st.floats(min_value=1e-6, max_value=1 - 1e-6),
        st.floats(min_value=1e-6, max_value=1 - 1e-6),
    )
    def test_overflow_regime_stays_exact(self, case, u, v):
        """|slope*width| ~ 1e6: no overflow, draws inside the support."""
        knots, slopes = case
        dist = PiecewiseExponential(knots, slopes)
        assert math.isfinite(dist.log_z)
        assert dist.piece_probabilities().sum() == pytest.approx(1.0, abs=1e-9)
        x = dist.sample_uv(u, v)
        assert knots[0] <= x <= knots[-1]
        assert 0.0 <= dist.cdf(x) <= 1.0
        q = dist.ppf(0.5)
        assert knots[0] <= q <= knots[-1]


# ----------------------------------------------------------------------
# Scalar vs vectorized log-integral kernel.
# ----------------------------------------------------------------------


class TestLogIntegralExpAgreement:
    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(st.tuples(slope_elems, width_elems), min_size=1, max_size=16)
    )
    def test_vectorized_matches_scalar(self, pairs):
        slopes = np.array([p[0] for p in pairs])
        widths = np.array([p[1] for p in pairs])
        vec = log_integral_exp(slopes, widths)
        ref = np.array(
            [_log_integral_exp(float(s), float(w)) for s, w in pairs]
        )
        both_inf = np.isinf(ref) & np.isinf(vec) & (np.sign(ref) == np.sign(vec))
        np.testing.assert_allclose(
            vec[~both_inf], ref[~both_inf], rtol=1e-13, atol=1e-300
        )

    def test_unbounded_pieces(self):
        vec = log_integral_exp(np.array([-2.0, -0.5]), np.array([np.inf, np.inf]))
        ref = [_log_integral_exp(-2.0, math.inf), _log_integral_exp(-0.5, math.inf)]
        np.testing.assert_array_equal(vec, ref)
        with pytest.raises(Exception):
            log_integral_exp(np.array([0.5]), np.array([np.inf]))

    def test_flat_eps_boundary_regression(self):
        """Scalar and vector must take the same branch at the flat transition.

        The flat branch returns ``log(width)``; the exact formula differs
        from it by O(_FLAT_EPS).  If the two implementations disagreed on
        the branch threshold, a move's log-mass could differ by ~1e-13
        between kernels — this pins bitwise branch agreement on, at, and
        around the boundary, and continuity across it.
        """
        for width in (1.0, 3.7, 0.01, 123.456):
            for frac in (0.5, 1.0 - 1e-12, 1.0, 1.0 + 1e-12, 2.0):
                for sign in (1.0, -1.0):
                    slope = sign * _FLAT_EPS * frac / width
                    scalar = _log_integral_exp(slope, width)
                    vector = float(log_integral_exp(slope, width))
                    assert scalar == vector, (
                        f"slope={slope!r} width={width!r}: {scalar!r} != {vector!r}"
                    )
                    # Continuity: both sides of the branch agree to O(eps).
                    assert scalar == pytest.approx(
                        math.log(width), abs=4.0 * _FLAT_EPS
                    )

    def test_flat_branch_is_bitwise_log_width(self):
        widths = np.array([0.5, 1.0, 7.25])
        slopes = np.zeros(3)
        np.testing.assert_array_equal(
            log_integral_exp(slopes, widths), np.log(widths)
        )

    def test_zero_width_is_log_zero(self):
        out = log_integral_exp(np.array([1.0, -3.0, 0.0]), np.zeros(3))
        assert np.all(np.isneginf(out))
        assert _log_integral_exp(5.0, 0.0) == -math.inf
