"""Tests for posterior credible intervals."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import GibbsSampler, heuristic_initialize
from repro.observation import TaskSampling


@pytest.fixture(scope="module")
def samples(tandem_sim):
    trace = TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=9)
    rates = tandem_sim.true_rates()
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=10)
    return sampler.collect(n_samples=40, burn_in=20), tandem_sim


class TestCredibleInterval:
    def test_interval_brackets_mean(self, samples):
        posterior, _ = samples
        lower, upper = posterior.credible_interval("service", level=0.9)
        mean = posterior.posterior_mean_service()
        for q in range(1, lower.size):
            assert lower[q] <= mean[q] <= upper[q]

    def test_wider_level_wider_interval(self, samples):
        posterior, _ = samples
        lo50, hi50 = posterior.credible_interval("waiting", level=0.5)
        lo95, hi95 = posterior.credible_interval("waiting", level=0.95)
        width50 = np.nan_to_num(hi50 - lo50)
        width95 = np.nan_to_num(hi95 - lo95)
        assert np.all(width95 >= width50 - 1e-12)

    def test_covers_truth_at_true_rates(self, samples):
        posterior, sim = samples
        lower, upper = posterior.credible_interval("service", level=0.99)
        truth = sim.events.mean_service_by_queue()
        covered = sum(
            lower[q] - 0.02 <= truth[q] <= upper[q] + 0.02
            for q in range(1, lower.size)
        )
        assert covered == lower.size - 1

    def test_validation(self, samples):
        posterior, _ = samples
        with pytest.raises(InferenceError):
            posterior.credible_interval("latency")
        with pytest.raises(InferenceError):
            posterior.credible_interval("waiting", level=1.5)
