"""Tests for the outer Metropolis-Hastings path resampler (paper Section 3)."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import (
    GibbsSampler,
    PathResampler,
    heuristic_initialize,
    mle_rates,
    tier_candidates_from_fsm,
)
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(scope="module")
def tiered_setup():
    """A three-tier network where the middle tier has 3 candidate servers."""
    net = build_three_tier_network(6.0, (1, 3, 1), service_rate=5.0)
    sim = simulate_network(net, 200, random_state=303)
    return net, sim


def unknown_tier_events(net, sim, trace):
    """Events at the replicated tier belonging to unobserved tasks."""
    ev = sim.events
    tier_queues = {net.queue_index(f"app-{j}") for j in range(3)}
    unknown = [
        e for e in range(ev.n_events)
        if int(ev.queue[e]) in tier_queues and not trace.arrival_observed[e]
    ]
    return np.array(unknown, dtype=np.int64)


class TestReassignQueue:
    def test_round_trip_restores_structure(self, tiered_setup):
        net, sim = tiered_setup
        ev = sim.events.copy()
        tier = [net.queue_index(f"app-{j}") for j in range(3)]
        e = int(ev.queue_order(tier[0])[3])
        before_rho = ev.rho.copy()
        ev.reassign_queue(e, tier[1])
        assert ev.queue[e] == tier[1]
        ev.reassign_queue(e, tier[0])
        np.testing.assert_array_equal(ev.rho, before_rho)
        ev.validate()

    def test_pointers_consistent_after_move(self, tiered_setup):
        net, sim = tiered_setup
        ev = sim.events.copy()
        tier = [net.queue_index(f"app-{j}") for j in range(3)]
        e = int(ev.queue_order(tier[0])[5])
        ev.reassign_queue(e, tier[2])
        for q in range(ev.n_queues):
            order = ev.queue_order(q)
            for i, x in enumerate(order):
                assert ev.queue[x] == q
                expected_rho = order[i - 1] if i > 0 else -1
                assert ev.rho[x] == expected_rho
        # Arrival order at the target queue remains sorted.
        order = ev.queue_order(tier[2])
        assert np.all(np.diff(ev.arrival[order]) >= 0.0)

    def test_rejects_initial_event(self, tiered_setup):
        _, sim = tiered_setup
        ev = sim.events.copy()
        first = int(ev.events_of_task(0)[0])
        from repro.errors import InvalidEventSetError

        with pytest.raises(InvalidEventSetError):
            ev.reassign_queue(first, 1)

    def test_rejects_queue_zero(self, tiered_setup):
        _, sim = tiered_setup
        ev = sim.events.copy()
        e = int(ev.events_of_task(0)[1])
        from repro.errors import InvalidEventSetError

        with pytest.raises(InvalidEventSetError):
            ev.reassign_queue(e, 0)

    def test_copy_isolated_from_reassignment(self, tiered_setup):
        net, sim = tiered_setup
        ev = sim.events.copy()
        clone = ev.copy()
        tier = [net.queue_index(f"app-{j}") for j in range(3)]
        e = int(ev.queue_order(tier[0])[2])
        ev.reassign_queue(e, tier[1])
        assert clone.queue[e] == tier[0]
        clone.validate()


class TestCandidates:
    def test_candidates_cover_tier(self, tiered_setup):
        net, sim = tiered_setup
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=1)
        unknown = unknown_tier_events(net, sim, trace)
        candidates = tier_candidates_from_fsm(sim.events, net.fsm, unknown)
        tier = {net.queue_index(f"app-{j}") for j in range(3)}
        for e, (queues, probs) in candidates.items():
            assert set(queues.tolist()) == tier
            assert probs.sum() == pytest.approx(1.0)

    def test_missing_state_rejected(self, tiered_setup):
        net, sim = tiered_setup
        ev = sim.events.copy()
        e = int(unknown_tier_events(net, sim, TaskSampling(fraction=0.2).observe(
            sim.events, random_state=1))[0])
        ev.state[e] = -1
        with pytest.raises(InferenceError):
            tier_candidates_from_fsm(ev, net.fsm, np.array([e]))


class TestPathResampler:
    def test_sweep_keeps_state_valid(self, tiered_setup):
        net, sim = tiered_setup
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=1)
        unknown = unknown_tier_events(net, sim, trace)
        state = heuristic_initialize(trace, sim.true_rates())
        candidates = tier_candidates_from_fsm(state, net.fsm, unknown)
        resampler = PathResampler(state, candidates, sim.true_rates(), random_state=2)
        for _ in range(4):
            stats = resampler.sweep()
            state.validate()
        assert stats.n_proposed == unknown.size

    def test_moves_actually_happen(self, tiered_setup):
        net, sim = tiered_setup
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=1)
        unknown = unknown_tier_events(net, sim, trace)
        state = heuristic_initialize(trace, sim.true_rates())
        before = state.queue[unknown].copy()
        candidates = tier_candidates_from_fsm(state, net.fsm, unknown)
        resampler = PathResampler(state, candidates, sim.true_rates(), random_state=3)
        for _ in range(5):
            resampler.sweep()
        moved = np.mean(state.queue[unknown] != before)
        assert moved > 0.2

    def test_acceptance_rate_sane(self, tiered_setup):
        net, sim = tiered_setup
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=1)
        unknown = unknown_tier_events(net, sim, trace)
        state = heuristic_initialize(trace, sim.true_rates())
        candidates = tier_candidates_from_fsm(state, net.fsm, unknown)
        resampler = PathResampler(state, candidates, sim.true_rates(), random_state=4)
        stats = resampler.sweep()
        assert 0.0 <= stats.acceptance_rate <= 1.0

    def test_current_queue_must_be_candidate(self, tiered_setup):
        net, sim = tiered_setup
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=1)
        unknown = unknown_tier_events(net, sim, trace)
        state = heuristic_initialize(trace, sim.true_rates())
        e = int(unknown[0])
        bad = {e: (np.array([1]), np.array([1.0]))}  # queue 1 = web tier
        if int(state.queue[e]) != 1:
            with pytest.raises(InferenceError):
                PathResampler(state, bad, sim.true_rates())


class TestJointInference:
    def test_interleaved_gibbs_and_paths_recovers_rates(self, tiered_setup):
        """Joint sampling over times AND assignments still estimates mu.

        We deliberately scramble the unknown events' server assignments
        before inference, so only the path moves can repair them.
        """
        net, sim = tiered_setup
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=5)
        unknown = unknown_tier_events(net, sim, trace)
        rng = np.random.default_rng(6)
        tier = [net.queue_index(f"app-{j}") for j in range(3)]

        rates = sim.true_rates()
        state = heuristic_initialize(trace, rates)

        # Scramble assignments (simulating "not logged"): move each unknown
        # event to a random tier server, keeping the state feasible (revert
        # moves that would force negative service somewhere).
        scrambled = 0
        for e in unknown:
            e = int(e)
            q_before = int(state.queue[e])
            q_new = int(rng.choice(tier))
            state.reassign_queue(e, q_new)
            if not state.is_valid():
                state.reassign_queue(e, q_before)
            elif q_new != q_before:
                scrambled += 1
        assert scrambled > unknown.size // 4
        state.validate()
        sampler = GibbsSampler(trace, state, rates, random_state=7)
        candidates = tier_candidates_from_fsm(state, net.fsm, unknown)
        paths = PathResampler(state, candidates, rates, random_state=8)

        estimates = []
        for _ in range(40):
            sampler.sweep()
            paths.sweep()
            new_rates = mle_rates(state)
            sampler.set_rates(new_rates)
            paths.set_rates(new_rates)
            estimates.append(new_rates)
        estimate = np.array(estimates)[20:].mean(axis=0)
        # Tier-average service rate recovered despite scrambled paths.
        tier_rates = estimate[tier]
        assert np.mean(1.0 / tier_rates) == pytest.approx(0.2, rel=0.45)
        assert estimate[0] == pytest.approx(6.0, rel=0.25)
