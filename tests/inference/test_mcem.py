"""Tests for Monte-Carlo EM."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import run_mcem, run_stem
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(scope="module")
def mcem_setup():
    net = build_tandem_network(4.0, [6.0, 9.0])
    sim = simulate_network(net, 300, random_state=55)
    trace = TaskSampling(fraction=0.15).observe(sim.events, random_state=5)
    return sim, trace


class TestRunMCEM:
    def test_recovers_rates(self, mcem_setup):
        sim, trace = mcem_setup
        result = run_mcem(
            trace, n_iterations=12, e_sweeps=8, random_state=1, init_method="heuristic"
        )
        np.testing.assert_allclose(result.rates, sim.true_rates(), rtol=0.4)

    def test_history_and_sweep_accounting(self, mcem_setup):
        _, trace = mcem_setup
        result = run_mcem(
            trace, n_iterations=4, e_sweeps=5, e_burn_in=2, random_state=2,
            init_method="heuristic",
        )
        assert result.rates_history.shape == (5, trace.skeleton.n_queues)
        assert result.total_sweeps == 4 * (5 + 2)

    def test_growth_schedule(self, mcem_setup):
        _, trace = mcem_setup
        result = run_mcem(
            trace, n_iterations=3, e_sweeps=4, e_burn_in=0, growth=2.0,
            random_state=3, init_method="heuristic",
        )
        # 4 + 8 + 16 sweeps.
        assert result.total_sweeps == 28

    def test_parameter_validation(self, mcem_setup):
        _, trace = mcem_setup
        with pytest.raises(InferenceError):
            run_mcem(trace, n_iterations=0)
        with pytest.raises(InferenceError):
            run_mcem(trace, growth=0.5)

    def test_mcem_iterates_smoother_than_stem(self, mcem_setup):
        """MCEM averages sweeps per E-step, so its trajectory jitters less."""
        _, trace = mcem_setup
        stem = run_stem(trace, n_iterations=24, random_state=4, init_method="heuristic")
        mcem = run_mcem(
            trace, n_iterations=24, e_sweeps=10, random_state=4,
            init_method="heuristic",
        )
        stem_jitter = np.abs(np.diff(stem.rates_history[8:], axis=0)).mean()
        mcem_jitter = np.abs(np.diff(mcem.rates_history[8:], axis=0)).mean()
        assert mcem_jitter < stem_jitter
