"""Tests for stochastic EM (paper Section 4)."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import run_stem
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(scope="module")
def stem_setup():
    net = build_tandem_network(4.0, [6.0, 9.0])
    sim = simulate_network(net, 400, random_state=88)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=8)
    return sim, trace


class TestRunStem:
    def test_recovers_rates(self, stem_setup):
        sim, trace = stem_setup
        result = run_stem(trace, n_iterations=80, random_state=1, init_method="heuristic")
        true = sim.true_rates()
        np.testing.assert_allclose(result.rates, true, rtol=0.35)
        # Arrival rate is the easiest: tighter bound.
        assert result.arrival_rate == pytest.approx(true[0], rel=0.15)

    def test_history_shape_and_burn_in(self, stem_setup):
        _, trace = stem_setup
        result = run_stem(trace, n_iterations=20, burn_in=5, random_state=2,
                          init_method="heuristic")
        assert result.rates_history.shape == (21, trace.skeleton.n_queues)
        assert result.burn_in == 5
        np.testing.assert_allclose(
            result.rates, result.rates_history[5:].mean(axis=0)
        )

    def test_mean_service_times_inverse(self, stem_setup):
        _, trace = stem_setup
        result = run_stem(trace, n_iterations=10, random_state=3, init_method="heuristic")
        np.testing.assert_allclose(result.mean_service_times(), 1.0 / result.rates)

    def test_final_state_valid_and_reusable(self, stem_setup):
        _, trace = stem_setup
        result = run_stem(trace, n_iterations=15, random_state=4, init_method="heuristic")
        result.sampler.state.validate()
        np.testing.assert_allclose(result.sampler.rates, result.rates)
        result.sampler.sweep()  # still usable

    def test_iterate_std_positive(self, stem_setup):
        _, trace = stem_setup
        result = run_stem(trace, n_iterations=30, random_state=5, init_method="heuristic")
        assert np.all(result.iterate_std() >= 0.0)
        assert np.any(result.iterate_std() > 0.0)

    def test_explicit_initial_rates(self, stem_setup):
        sim, trace = stem_setup
        result = run_stem(
            trace, n_iterations=10, random_state=6,
            initial_rates=sim.true_rates(), init_method="heuristic",
        )
        np.testing.assert_allclose(result.rates_history[0], sim.true_rates())

    def test_validation_errors(self, stem_setup):
        _, trace = stem_setup
        with pytest.raises(InferenceError):
            run_stem(trace, n_iterations=0)
        with pytest.raises(InferenceError):
            run_stem(trace, n_iterations=10, burn_in=10)

    def test_sweeps_per_iteration(self, stem_setup):
        _, trace = stem_setup
        result = run_stem(
            trace, n_iterations=10, sweeps_per_iteration=3, random_state=7,
            init_method="heuristic",
        )
        assert result.sampler.n_sweeps_done == 30

    def test_reproducible(self, stem_setup):
        _, trace = stem_setup
        a = run_stem(trace, n_iterations=10, random_state=9, init_method="heuristic")
        b = run_stem(trace, n_iterations=10, random_state=9, init_method="heuristic")
        np.testing.assert_array_equal(a.rates_history, b.rates_history)


class TestMoreDataHelps:
    def test_error_decreases_with_observation_rate(self):
        """The central claim of Figure 4, in miniature."""
        net = build_tandem_network(4.0, [6.0, 9.0])
        sim = simulate_network(net, 500, random_state=99)
        true = sim.true_rates()
        errors = {}
        for fraction in (0.05, 0.5):
            errs = []
            for rep in range(3):
                trace = TaskSampling(fraction=fraction).observe(
                    sim.events, random_state=rep
                )
                result = run_stem(
                    trace, n_iterations=60, random_state=rep, init_method="heuristic"
                )
                errs.append(np.abs(1.0 / result.rates[1:] - 1.0 / true[1:]).mean())
            errors[fraction] = np.mean(errs)
        assert errors[0.5] < errors[0.05]
