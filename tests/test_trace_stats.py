"""Tests for trace-level statistics."""

import numpy as np
import pytest

from repro.errors import InvalidEventSetError
from repro.trace_stats import (
    busy_periods,
    queue_length_process,
    utilization_from_trace,
)
from tests.events.test_event_set import two_task_tandem


class TestQueueLengthProcess:
    def test_hand_computed_profile(self):
        ev = two_task_tandem()
        # Queue 1: task 0 in [1.0, 1.5], task 1 in [1.2, 1.9].
        proc = queue_length_process(ev, 1)
        assert proc.at(0.5) == 0
        assert proc.at(1.1) == 1
        assert proc.at(1.3) == 2
        assert proc.at(1.7) == 1
        assert proc.at(2.5) == 0

    def test_peak(self):
        ev = two_task_tandem()
        t, n = queue_length_process(ev, 1).peak()
        assert n == 2
        assert 1.2 <= t <= 1.5

    def test_time_average_matches_littles_lhs(self, tandem_sim):
        proc = queue_length_process(tandem_sim.events, 1)
        members = tandem_sim.events.queue_order(1)
        sojourn = float(
            np.sum(tandem_sim.events.departure[members]
                   - tandem_sim.events.arrival[members])
        )
        horizon = proc.times[-1] - proc.times[0]
        assert proc.time_average() == pytest.approx(sojourn / horizon, rel=1e-9)

    def test_counts_never_negative(self, three_tier_sim):
        for q in range(three_tier_sim.events.n_queues):
            proc = queue_length_process(three_tier_sim.events, q)
            assert proc.counts.min() >= 0
            assert proc.counts[-1] == 0  # everything eventually departs

    def test_empty_queue_rejected(self, tandem_sim):
        from repro.network import build_load_balanced_network
        from repro.simulate import simulate_network

        net = build_load_balanced_network(2.0, [5.0, 5.0], weights=[1.0, 1e-12])
        sim = simulate_network(net, 20, random_state=0)
        starved = net.queue_index("server-1")
        if sim.events.queue_order(starved).size == 0:
            with pytest.raises(InvalidEventSetError):
                queue_length_process(sim.events, starved)


class TestBusyPeriods:
    def test_hand_computed(self):
        ev = two_task_tandem()
        # Queue 1 is busy continuously from 1.0 to 1.9 (task 1 arrives
        # while task 0 is in service).
        periods = busy_periods(ev, 1)
        assert len(periods) == 1
        assert periods[0].start == pytest.approx(1.0)
        assert periods[0].end == pytest.approx(1.9)
        assert periods[0].n_served == 2

    def test_idle_gap_splits_periods(self):
        ev = two_task_tandem()
        # Queue 2: task 0 in service [1.5, 1.8], task 1 arrives 1.9 > 1.8.
        periods = busy_periods(ev, 2)
        assert len(periods) == 2
        assert all(p.n_served == 1 for p in periods)

    def test_busy_time_equals_total_service(self, tandem_sim):
        ev = tandem_sim.events
        for q in (1, 2):
            periods = busy_periods(ev, q)
            busy = sum(p.duration for p in periods)
            members = ev.queue_order(q)
            total_service = float(ev.service_times()[members].sum())
            assert busy == pytest.approx(total_service, rel=1e-9)

    def test_served_counts_sum(self, tandem_sim):
        ev = tandem_sim.events
        periods = busy_periods(ev, 1)
        assert sum(p.n_served for p in periods) == ev.queue_order(1).size


class TestUtilization:
    def test_bounds(self, three_tier_sim):
        for q in range(1, three_tier_sim.events.n_queues):
            u = utilization_from_trace(three_tier_sim.events, q)
            assert 0.0 <= u <= 1.0

    def test_overloaded_queue_near_saturation(self, three_tier_sim):
        # The rho = 2 tier is busy almost continuously.
        assert utilization_from_trace(three_tier_sim.events, 1) > 0.9

    def test_light_queue_mostly_idle(self):
        from repro.network import build_tandem_network
        from repro.simulate import simulate_network

        net = build_tandem_network(1.0, [20.0])
        sim = simulate_network(net, 500, random_state=1)
        assert utilization_from_trace(sim.events, 1) < 0.15
