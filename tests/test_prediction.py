"""Tests for what-if load prediction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import build_tandem_network, build_three_tier_network
from repro.prediction import (
    predict_response_curve,
    saturation_point,
    simulate_at_load,
)


class TestSaturationPoint:
    def test_tandem_bottleneck(self):
        net = build_tandem_network(1.0, [5.0, 3.0])
        # Every task visits both queues once; the mu = 3 queue binds.
        assert saturation_point(net) == pytest.approx(3.0)

    def test_three_tier_accounts_for_splitting(self):
        net = build_three_tier_network(1.0, (1, 2, 4), service_rate=5.0)
        # 1-server tier: visits 1.0 -> capacity 5; 2-server tier: visits
        # 0.5 each -> capacity 10; so the single server binds at 5.
        assert saturation_point(net) == pytest.approx(5.0)

    def test_revisits_count(self):
        from repro.network import build_load_balanced_network

        net = build_load_balanced_network(
            arrival_rate=1.0, server_rates=[50.0],
            pre=[("net", 10.0)], post=[("net", 10.0)],
        )
        # The network queue is visited twice: capacity 10 / 2 visits = 5.
        assert saturation_point(net) == pytest.approx(5.0)


class TestAnalyticCurve:
    def test_monotone_response(self):
        net = build_tandem_network(1.0, [5.0, 4.0])
        sweep = predict_response_curve(net, np.array([0.5, 1.0, 2.0, 3.0, 3.9]))
        finite = sweep.mean_response[np.isfinite(sweep.mean_response)]
        assert np.all(np.diff(finite) > 0.0)

    def test_saturation_reported_as_inf(self):
        net = build_tandem_network(1.0, [5.0, 4.0])
        sweep = predict_response_curve(net, np.array([3.0, 4.5]))
        assert np.isfinite(sweep.mean_response[0])
        assert np.isinf(sweep.mean_response[1])

    def test_knee_detection(self):
        net = build_tandem_network(1.0, [5.0])
        rates = np.linspace(0.5, 4.9, 20)
        sweep = predict_response_curve(net, rates)
        knee = sweep.knee(factor=3.0)
        assert knee is not None
        # Response triples vs light load around lambda ~ 3.5-4.5.
        assert 2.5 < knee < 5.0

    def test_validation(self):
        net = build_tandem_network(1.0, [5.0])
        with pytest.raises(ConfigurationError):
            predict_response_curve(net, np.array([]))
        with pytest.raises(ConfigurationError):
            predict_response_curve(net, np.array([1.0]), mode="oracle")


class TestSimulationMode:
    def test_matches_analytic_when_stable(self):
        net = build_tandem_network(1.0, [5.0, 4.0])
        rates = np.array([1.0, 2.0])
        analytic = predict_response_curve(net, rates, mode="analytic")
        simulated = predict_response_curve(
            net, rates, mode="simulation", n_tasks=4000, n_repetitions=2,
            random_state=0,
        )
        np.testing.assert_allclose(
            simulated.mean_response, analytic.mean_response, rtol=0.15
        )

    def test_simulation_handles_overload(self):
        net = build_tandem_network(1.0, [5.0])
        sweep = predict_response_curve(
            net, np.array([8.0]), mode="simulation", n_tasks=500,
            n_repetitions=1, random_state=1,
        )
        # Transient response is finite (unlike the analytic inf) but large.
        assert np.isfinite(sweep.mean_response[0])
        assert sweep.mean_response[0] > 1.0

    def test_simulate_at_load(self):
        net = build_tandem_network(1.0, [5.0])
        sim = simulate_at_load(net, arrival_rate=2.0, n_tasks=500, random_state=2)
        assert sim.network.arrival_rate == 2.0
        sim.events.validate()


class TestEndToEndExtrapolation:
    def test_fit_then_predict(self):
        """The paper's promised workflow: fit at low load, predict high load."""
        from repro.inference import run_stem
        from repro.observation import TaskSampling
        from repro.simulate import simulate_network

        true_net = build_tandem_network(1.5, [5.0, 4.0])  # light load
        sim = simulate_network(true_net, 600, random_state=3)
        trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=3)
        stem = run_stem(trace, n_iterations=60, random_state=4, init_method="heuristic")
        fitted = true_net.with_rates(stem.rates)
        predicted = predict_response_curve(fitted, np.array([3.5]))
        truth = predict_response_curve(true_net, np.array([3.5]))
        # Extrapolated high-load response within 40% of the true model's.
        assert predicted.mean_response[0] == pytest.approx(
            truth.mean_response[0], rel=0.4
        )
