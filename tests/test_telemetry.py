"""Tests for the unified telemetry subsystem.

Covers the metric primitives and registry semantics, the per-window
pipeline traces, the Prometheus/JSON renderers and the router's
label/merge helpers, the disabled no-op path, the console renderer, the
sparkline primitives — and the two registry contracts: every metric
name emitted anywhere in ``src/repro`` must appear in the documented
spec table (and vice versa), and the README reference table must match
the spec row for row.
"""

import json
import math
import re
from pathlib import Path

import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    SPEC,
    TelemetryError,
    label_metrics,
    merge_reports,
    render_json,
    render_prometheus,
)
from repro.telemetry.console import render_top
from repro.viz.sparkline import bar_row, hbar, liveness_dots, resample, spark

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture
def reg():
    with telemetry.isolated(enabled=True) as registry:
        yield registry


class TestCounter:
    def test_inc_accumulates(self, reg):
        c = reg.counter("repro_stream_records_admitted_total")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_rejected(self, reg):
        c = reg.counter("repro_stream_records_admitted_total")
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_same_series_shared(self, reg):
        a = reg.counter("repro_stream_records_admitted_total")
        b = reg.counter("repro_stream_records_admitted_total")
        assert a is b

    def test_kind_conflict_rejected(self, reg):
        reg.counter("repro_stream_records_admitted_total")
        with pytest.raises(TelemetryError):
            reg.gauge("repro_stream_records_admitted_total")

    def test_spec_kind_enforced(self, reg):
        # repro_stream_watermark is documented as a gauge.
        with pytest.raises(TelemetryError):
            reg.counter("repro_stream_watermark")


class TestGauge:
    def test_set_and_inc(self, reg):
        g = reg.gauge("repro_stream_watermark")
        g.set(3.5)
        g.inc(0.5)
        assert g.value == 4.0

    def test_callback_evaluated_at_read(self, reg):
        state = {"v": 1.0}
        reg.gauge_callback("repro_stream_horizon", lambda: state["v"])
        state["v"] = 7.0
        (entry,) = reg.snapshot()
        assert entry["value"] == 7.0

    def test_callback_exception_reads_nan(self, reg):
        def boom():
            raise RuntimeError("dead")

        reg.gauge_callback("repro_stream_horizon", boom)
        (entry,) = reg.snapshot()
        assert math.isnan(entry["value"])


class TestHistogram:
    def test_bucket_counts_le_inclusive(self, reg):
        h = reg.histogram("repro_kernel_batch_size")  # buckets from spec
        for v in (1, 2, 2, 3, 10_000_000):
            h.observe(v)
        data = h.snapshot_data()
        counts = {le: c for le, c in data["buckets"]}
        assert counts[1.0] == 1
        assert counts[2.0] == 2  # le-inclusive, non-cumulative
        assert counts[math.inf] == 1  # overflow slot
        assert data["count"] == 5
        assert data["min"] == 1.0 and data["max"] == 10_000_000.0

    def test_quantiles_from_reservoir(self, reg):
        h = reg.histogram("repro_service_publish_seconds")
        for v in range(1, 101):
            h.observe(float(v))
        q = h.quantiles()
        assert 40 <= q["p50"] <= 60
        assert q["p99"] >= q["p90"] >= q["p50"]

    def test_empty_quantiles_none(self, reg):
        h = reg.histogram("repro_service_publish_seconds")
        assert h.quantiles() == {"p50": None, "p90": None, "p99": None}

    def test_reservoir_deterministic_per_series(self):
        def fill():
            r = MetricsRegistry(enabled=True)
            h = r.histogram("repro_service_publish_seconds")
            for v in range(10_000):
                h.observe(float(v))
            return h.quantiles()

        assert fill() == fill()


class TestPhasesAndTraces:
    def test_phase_observes_histogram(self, reg):
        with telemetry.phase("sweeps"):
            pass
        (entry,) = [
            e for e in reg.snapshot()
            if e["name"] == "repro_window_phase_seconds"
        ]
        assert entry["labels"] == {"phase": "sweeps"}
        assert entry["count"] == 1

    def test_window_trace_collects_phases(self, reg):
        with telemetry.window_trace(3, 10.0, 20.0):
            with telemetry.phase("poll"):
                pass
            with telemetry.phase("sweeps"):
                pass
            with telemetry.phase("sweeps"):
                pass
        (trace,) = reg.window_traces()
        assert trace["index"] == 3
        assert trace["t0"] == 10.0 and trace["t1"] == 20.0
        assert trace["phases"]["sweeps"]["count"] == 2
        assert trace["phases"]["poll"]["count"] == 1
        assert trace["duration_seconds"] >= 0.0

    def test_trace_ring_bounded(self, reg):
        small = MetricsRegistry(enabled=True, trace_ring=4)
        telemetry.set_registry(small)
        for i in range(10):
            with telemetry.window_trace(i, 0.0, 1.0):
                pass
        traces = small.window_traces()
        assert [t["index"] for t in traces] == [6, 7, 8, 9]

    def test_phase_outside_trace_is_fine(self, reg):
        with telemetry.phase("publish"):
            pass
        assert reg.window_traces() == []


class TestDisabled:
    def test_no_series_recorded(self):
        with telemetry.isolated(enabled=False):
            telemetry.counter("repro_stream_records_admitted_total").inc()
            with telemetry.phase("sweeps"):
                pass
            with telemetry.window_trace(0, 0.0, 1.0):
                pass
            report = telemetry.report()
        assert report["metrics"] == []
        assert report["window_traces"] == []
        assert telemetry.enabled()  # restored

    def test_env_knob_parsed(self, monkeypatch):
        from repro.telemetry import _env_enabled

        for value in ("0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            assert _env_enabled() is False
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert _env_enabled() is True


class TestRenderers:
    def _report(self, reg):
        reg.counter("repro_stream_records_admitted_total").inc(7)
        reg.gauge("repro_stream_watermark").set(float("inf"))
        h = reg.histogram("repro_window_phase_seconds", phase="sweeps")
        h.observe(0.01)
        h.observe(0.5)
        return reg.report()

    def test_prometheus_text(self, reg):
        text = render_prometheus(self._report(reg)["metrics"])
        assert "# TYPE repro_stream_records_admitted_total counter" in text
        assert "repro_stream_records_admitted_total 7" in text
        assert "repro_stream_watermark +Inf" in text
        assert re.search(
            r'repro_window_phase_seconds_bucket{le="\+Inf",phase="sweeps"} 2',
            text,
        )
        assert 'repro_window_phase_seconds_count{phase="sweeps"} 2' in text

    def test_prometheus_buckets_cumulative(self, reg):
        text = render_prometheus(self._report(reg)["metrics"])
        les, counts = [], []
        for m in re.finditer(
            r'_bucket{le="([^"]+)",phase="sweeps"} (\d+)', text
        ):
            les.append(m.group(1))
            counts.append(int(m.group(2)))
        assert counts == sorted(counts)  # cumulative
        assert les[-1] == "+Inf" and counts[-1] == 2

    def test_json_round_trips_nonfinite(self, reg):
        text = render_json(self._report(reg))
        parsed = json.loads(text)  # strict: +Inf must be encoded as string
        gauge = next(
            m for m in parsed["metrics"]
            if m["name"] == "repro_stream_watermark"
        )
        assert gauge["value"] == "+Inf"

    def test_label_and_merge(self, reg):
        report = self._report(reg)
        tagged = label_metrics(report["metrics"], partition="2")
        assert all(m["labels"]["partition"] == "2" for m in tagged)
        merged = merge_reports(
            [report, {"schema": 1, "metrics": tagged, "window_traces": []}]
        )
        assert merged["schema"] == 1
        assert len(merged["metrics"]) == 2 * len(report["metrics"])


class TestConsole:
    def _inputs(self, reg):
        with telemetry.window_trace(0, 0.0, 10.0):
            with telemetry.phase("sweeps"):
                pass
        health = {
            "schema": 1,
            "service": {"status": "serving", "windows_published": 2,
                        "anomalies": 1, "horizon": 20.0,
                        "n_records_seen": 100},
            "stream": {"watermark": 10.0, "sealed": False},
            "workers": {"n_workers": 4, "n_alive": 3, "n_relaunches": 1},
        }
        estimates = [
            {"index": 0, "rates": [2.0, 5.0, 8.0], "failure": None},
            {"index": 1, "rates": [2.2, 5.5, 8.1], "failure": None},
        ]
        anomalies = [{"queue": 2, "window_index": 1, "z_score": 5.0}]
        return health, estimates, reg.report(), anomalies

    def test_frame_contents(self, reg):
        health, estimates, report, anomalies = self._inputs(reg)
        frame = render_top(health, estimates, report, anomalies)
        assert "SERVING" in frame
        assert "●●●○" in frame  # 3/4 workers alive
        assert "arrival λ" in frame and "queue 2 µ" in frame
        assert "util ρ" in frame
        assert "⚠1" in frame  # anomaly flag on queue 2
        assert "sweeps" in frame  # phase latency bar
        assert all(len(line) <= 80 for line in frame.splitlines())

    def test_empty_inputs_render(self, reg):
        frame = render_top({}, [], {}, None)
        assert "no published windows" in frame


class TestSparklinePrimitives:
    def test_resample_preserves_short_series(self):
        assert resample([1.0, 2.0], 8) == [1.0, 2.0]

    def test_resample_bucket_means(self):
        out = resample([0.0, 2.0, 4.0, 6.0], 2)
        assert out == [1.0, 5.0]

    def test_spark_width_bounded(self):
        assert len(spark(list(range(500)), width=32)) == 32

    def test_hbar_full_and_empty(self):
        assert hbar(1.0, 4) == "████"
        assert hbar(0.0, 4) == "    "
        assert len(hbar(0.37, 20)) == 20

    def test_hbar_partial_blocks(self):
        assert hbar(0.5, 1) in "▌▍▋"

    def test_bar_row_shape(self):
        row = bar_row("sweeps", 0.5, 1.0, width=8, label_width=8)
        assert row.startswith("sweeps")
        assert "|" in row

    def test_liveness_dots(self):
        assert liveness_dots(2, 3) == "●●○"
        assert liveness_dots(5, 3) == "●●●"


def _emitted_names() -> set:
    """Every ``repro_*`` metric name literal in the source tree."""
    names = set()
    pattern = re.compile(r'"(repro_[a-z0-9_]+)"')
    for path in (REPO / "src" / "repro").rglob("*.py"):
        if "telemetry" in path.parts and path.name == "spec.py":
            continue  # the table itself
        for name in pattern.findall(path.read_text(encoding="utf-8")):
            names.add(name)
    return names


class TestSpecCoverage:
    def test_every_emitted_name_documented(self):
        undocumented = _emitted_names() - set(SPEC)
        assert not undocumented, (
            f"metric names emitted but missing from telemetry.spec.SPEC "
            f"(document them): {sorted(undocumented)}"
        )

    def test_every_documented_name_emitted(self):
        stale = set(SPEC) - _emitted_names()
        assert not stale, (
            f"telemetry.spec.SPEC documents names no code emits "
            f"(stale rows): {sorted(stale)}"
        )

    def test_readme_table_matches_spec(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        rows = re.findall(
            r"^\| `(repro_[a-z0-9_]+)` \| (\w+) \| (\w+) \|", readme,
            flags=re.MULTILINE,
        )
        table = {name: (kind, layer) for name, kind, layer in rows}
        assert set(table) == set(SPEC), (
            "README metrics reference out of sync with telemetry.spec.SPEC: "
            f"missing={sorted(set(SPEC) - set(table))} "
            f"stale={sorted(set(table) - set(SPEC))}"
        )
        for name, (kind, layer) in table.items():
            assert (kind, layer) == (SPEC[name][0], SPEC[name][1]), (
                f"README row for {name} disagrees with spec"
            )
        # Exactly once each: a duplicated row is as stale as a missing one.
        assert len(rows) == len(SPEC)
