"""Shared fixtures: small simulated networks and censored traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import build_tandem_network, build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


@pytest.fixture(scope="session")
def tandem_sim():
    """A small two-station tandem simulation (moderate load)."""
    network = build_tandem_network(arrival_rate=4.0, service_rates=[6.0, 8.0])
    return simulate_network(network, n_tasks=120, random_state=101)


@pytest.fixture(scope="session")
def three_tier_sim():
    """A small copy of the paper's synthetic setup (overload included)."""
    network = build_three_tier_network(
        arrival_rate=10.0, servers_per_tier=(1, 2, 4), service_rate=5.0
    )
    return simulate_network(network, n_tasks=150, random_state=7)


@pytest.fixture()
def tandem_trace(tandem_sim):
    """A 20 %-observed censored view of the tandem simulation."""
    return TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=3)


@pytest.fixture()
def three_tier_trace(three_tier_sim):
    """A 15 %-observed censored view of the three-tier simulation."""
    return TaskSampling(fraction=0.15).observe(three_tier_sim.events, random_state=5)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
