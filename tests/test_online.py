"""Tests for windowed estimation and anomaly detection."""

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.errors import InferenceError
from repro.fsm import TaskPath
from repro.network import build_tandem_network
from repro.network.topology import QueueingNetwork
from repro.observation import TaskSampling
from repro.online import WindowedEstimator, detect_anomalies
from repro.simulate import PoissonArrivals, simulate_tasks


def simulate_with_degradation(n_tasks=600, fault_at=0.5, slow_factor=4.0, seed=0):
    """A tandem trace where q1's service degrades midway (fault injection)."""
    from repro.simulate import RateChange, simulate_with_faults

    net = build_tandem_network(4.0, [8.0, 10.0])
    horizon_estimate = n_tasks / 4.0
    fault_time = fault_at * horizon_estimate
    sim = simulate_with_faults(
        net, n_tasks,
        faults=[RateChange(queue=1, at=fault_time, rate=8.0 / slow_factor)],
        random_state=seed,
    )
    events = sim.events
    horizon = float(np.sort(events.departure[events.seq == 0])[-1])
    return events, horizon, fault_time


class TestWindowedEstimator:
    @pytest.fixture(scope="class")
    def windows(self):
        events, horizon, fault_time = simulate_with_degradation(seed=13)
        trace = TaskSampling(fraction=0.25).observe(events, random_state=1)
        estimator = WindowedEstimator(
            trace, window=horizon / 8, stem_iterations=30,
            min_observed_tasks=3, random_state=2,
        )
        return estimator.run(), horizon, fault_time

    def test_windows_cover_horizon(self, windows):
        results, horizon, _ = windows
        assert results[0].t_start == 0.0
        assert results[-1].t_end >= horizon

    def test_most_windows_estimate(self, windows):
        results, _, _ = windows
        ok = [w for w in results if w.ok]
        assert len(ok) >= len(results) - 2

    def test_degradation_visible_in_series(self, windows):
        results, _, fault_time = windows
        before = [w.mean_service(1) for w in results if w.ok and w.t_end <= fault_time]
        after = [w.mean_service(1) for w in results if w.ok and w.t_start >= fault_time]
        assert before and after
        # Mean service at q1 quadruples after the fault.
        assert np.median(after) > 2.0 * np.median(before)

    def test_healthy_queue_stable(self, windows):
        results, _, fault_time = windows
        before = [w.mean_service(2) for w in results if w.ok and w.t_end <= fault_time]
        after = [w.mean_service(2) for w in results if w.ok and w.t_start >= fault_time]
        assert np.median(after) < 2.0 * np.median(before)

    def test_validation(self, tandem_trace):
        with pytest.raises(InferenceError):
            WindowedEstimator(tandem_trace, window=-1.0)
        with pytest.raises(InferenceError):
            WindowedEstimator(tandem_trace, window=1.0, step=0.0)
        with pytest.raises(InferenceError):
            WindowedEstimator(tandem_trace, window=1.0, shards=0)
        with pytest.raises(InferenceError):  # config error, not "all windows failed"
            WindowedEstimator(tandem_trace, window=1.0, stem_iterations=0)

    def test_sharded_windows_estimate(self, tandem_trace):
        """Sharded per-window StEM runs end to end; tiny windows clamp the
        shard count to their task count automatically."""
        horizon = float(np.nanmax(tandem_trace.skeleton.departure))
        estimator = WindowedEstimator(
            tandem_trace, window=horizon / 2, stem_iterations=15,
            random_state=9, shards=3,
        )
        results = estimator.run()
        assert any(w.ok for w in results)
        for w in results:
            if w.ok:
                assert np.all(np.isfinite(w.rates))


def synthetic_single_queue_trace(entries, service=0.4):
    """A fully observed single-queue trace with exact, known entry times."""
    from repro.events import EventSet
    from repro.observation import ObservedTrace

    arrivals, departures, last_dep = [], [], 0.0
    for e in entries:
        begin = max(e, last_dep)
        last_dep = begin + service
        arrivals.append([e])
        departures.append([last_dep])
    events = EventSet.from_task_paths(
        entries=entries, paths=[[1]] * len(entries),
        arrivals=arrivals, departures=departures, n_queues=2,
    )
    return ObservedTrace.from_ground_truth(
        events,
        arrival_observed=np.ones(events.n_events, dtype=bool),
        departure_observed=events.pi_inv == -1,
    )


class TestWindowedEdgeCases:
    def test_task_entering_exactly_at_horizon_with_tumbling_windows(self):
        """When the horizon is an exact multiple of the step, the window
        predicate ``t0 <= t < t1`` leaves the horizon task in no window —
        pinned so the streaming path can mirror it exactly."""
        trace = synthetic_single_queue_trace([0.0, 1.0, 2.0, 3.0, 4.0])
        estimator = WindowedEstimator(
            trace, window=2.0, min_observed_tasks=10**6, random_state=0
        )
        results = estimator.run()
        assert [(w.t_start, w.t_end) for w in results] == [(0.0, 2.0), (2.0, 4.0)]
        assert [w.n_tasks for w in results] == [2, 2]  # entry 4.0 in neither

    def test_task_at_horizon_included_when_windows_overhang(self):
        trace = synthetic_single_queue_trace([0.0, 1.0, 2.0, 3.0, 4.0])
        estimator = WindowedEstimator(
            trace, window=3.0, step=2.0, min_observed_tasks=10**6,
            random_state=0,
        )
        results = estimator.run()
        assert [(w.t_start, w.t_end) for w in results] == [(0.0, 3.0), (2.0, 5.0)]
        assert [w.n_tasks for w in results] == [3, 3]  # 4.0 lands in [2, 5)

    def test_overlapping_windows_cover_every_task_multiply(self):
        trace = synthetic_single_queue_trace([float(i) for i in range(8)])
        estimator = WindowedEstimator(
            trace, window=4.0, step=2.0, min_observed_tasks=10**6,
            random_state=0,
        )
        results = estimator.run()
        starts = [w.t_start for w in results]
        assert starts == [0.0, 2.0, 4.0, 6.0]
        # step < window: interior tasks are counted by two windows each.
        assert [w.n_tasks for w in results] == [4, 4, 4, 2]
        assert sum(w.n_tasks for w in results) > trace.skeleton.n_tasks

    def test_all_windows_skipped_path(self):
        trace = synthetic_single_queue_trace([0.0, 1.0, 2.0, 3.0])
        results = WindowedEstimator(
            trace, window=2.0, min_observed_tasks=10**6, random_state=0
        ).run()
        assert results and all(not w.ok for w in results)
        assert all(w.rates is None and w.failure is None for w in results)
        assert detect_anomalies(results) == []


class TestWindowedFailureHandling:
    """The `except Exception` bugfix: only InferenceError is window data."""

    def _estimator(self, tandem_trace):
        horizon = float(np.nanmax(tandem_trace.skeleton.departure))
        return WindowedEstimator(
            tandem_trace, window=horizon / 2, stem_iterations=5,
            min_observed_tasks=1, random_state=3,
        )

    def test_inference_error_is_recorded_as_failed_window(
        self, tandem_trace, monkeypatch
    ):
        import repro.online.windowed as windowed

        def boom(*args, **kwargs):
            raise InferenceError("window exploded")

        monkeypatch.setattr(windowed, "run_stem", boom)
        results = self._estimator(tandem_trace).run()
        attempted = [w for w in results if w.failure is not None]
        assert attempted, "no window attempted estimation"
        for w in attempted:
            assert not w.ok and w.failure == "window exploded"

    def test_programming_errors_propagate(self, tandem_trace, monkeypatch):
        import repro.online.windowed as windowed

        def bug(*args, **kwargs):
            raise TypeError("a genuine bug, not a failed window")

        monkeypatch.setattr(windowed, "run_stem", bug)
        with pytest.raises(TypeError, match="genuine bug"):
            self._estimator(tandem_trace).run()

    def test_streaming_failure_handling_matches(self, tandem_trace, monkeypatch):
        import repro.online.streaming as streaming
        from repro.online import ReplayTraceStream, StreamingEstimator

        def boom(*args, **kwargs):
            raise InferenceError("stream window exploded")

        monkeypatch.setattr(streaming, "run_stem", boom)
        horizon = float(np.nanmax(tandem_trace.skeleton.departure))
        results = StreamingEstimator(
            ReplayTraceStream(tandem_trace), window=horizon / 2,
            stem_iterations=5, min_observed_tasks=1, random_state=3,
        ).run()
        attempted = [w for w in results if w.failure is not None]
        assert attempted
        assert all(w.failure == "stream window exploded" for w in attempted)

        monkeypatch.setattr(
            streaming, "run_stem",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("bug")),
        )
        with pytest.raises(ValueError, match="bug"):
            StreamingEstimator(
                ReplayTraceStream(tandem_trace), window=horizon / 2,
                stem_iterations=5, min_observed_tasks=1, random_state=3,
            ).run()


class TestAnomalyDetection:
    def test_fault_flagged_on_right_queue(self):
        events, horizon, fault_time = simulate_with_degradation(seed=29)
        trace = TaskSampling(fraction=0.25).observe(events, random_state=3)
        estimator = WindowedEstimator(
            trace, window=horizon / 8, stem_iterations=30, random_state=4,
        )
        windows = estimator.run()
        reports = detect_anomalies(windows, threshold=4.0)
        assert reports, "the injected degradation was not detected"
        flagged_queues = {r.queue for r in reports}
        assert 1 in flagged_queues
        # The first flag lands at or after the fault.
        first = min(
            (r for r in reports if r.queue == 1), key=lambda r: r.window_index
        )
        assert first.t_end >= fault_time * 0.8

    def test_no_flags_on_healthy_trace(self, tandem_sim):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=5)
        horizon = float(np.nanmax(tandem_sim.events.departure))
        estimator = WindowedEstimator(
            trace, window=horizon / 5, stem_iterations=30, random_state=6,
        )
        windows = estimator.run()
        reports = detect_anomalies(windows, threshold=6.0)
        assert reports == []

    def test_empty_windows(self):
        assert detect_anomalies([]) == []

    def test_threshold_validation(self):
        with pytest.raises(InferenceError):
            detect_anomalies([], threshold=0.0)
        with pytest.raises(InferenceError):
            detect_anomalies([], min_scale_frac=-0.1)


def _window(i, service, ok=True, n_queues=3):
    """A synthetic WindowEstimate with queue 1's mean service = *service*."""
    from repro.online.windowed import WindowEstimate

    rates = None
    if ok:
        rates = np.array([4.0] + [1.0 / service] + [10.0] * (n_queues - 2))
    return WindowEstimate(
        t_start=float(i), t_end=float(i + 1), n_tasks=20, n_observed_tasks=10,
        rates=rates,
    )


class TestAnomalyDetectionBranches:
    """Unit coverage of detect_anomalies' warm-up and noise-floor branches."""

    def test_no_flags_while_history_shorter_than_min_history(self):
        # A huge jump inside the warm-up must not be judged: with
        # min_history=3, windows 0-2 build history and only window 3+ can
        # flag.  Failed windows (ok=False) must not count as history.
        windows = [
            _window(0, 1.0),
            _window(1, ok=False, service=0.0),
            _window(2, 50.0),   # only 1 earlier success -> warm-up
            _window(3, 1.0),    # 2 earlier successes    -> warm-up
            _window(4, 60.0),   # 3 earlier successes    -> judged, flagged
        ]
        reports = detect_anomalies(windows, queues=[1], threshold=4.0,
                                   min_history=3)
        assert [r.window_index for r in reports] == [4]
        # With a warm-up longer than the series, nothing is ever judged.
        assert detect_anomalies(windows, queues=[1], min_history=10) == []

    def test_judgment_starts_exactly_at_min_history(self):
        windows = [_window(i, 1.0) for i in range(3)] + [_window(3, 30.0)]
        assert detect_anomalies(windows, queues=[1], min_history=3)
        assert detect_anomalies(windows, queues=[1], min_history=4) == []

    def test_mad_noise_floor_suppresses_estimator_jitter(self):
        # Near-identical history -> MAD ~ 0.  Without the noise floor the
        # z-score of ordinary ~20% jitter would explode; the floor clamps
        # the scale to min_scale_frac * baseline and keeps it quiet.
        windows = [
            _window(0, 1.0), _window(1, 1.0 + 1e-9), _window(2, 1.0 - 1e-9),
            _window(3, 1.25),
        ]
        assert detect_anomalies(windows, queues=[1], threshold=4.0,
                                min_scale_frac=0.1) == []
        # Dropping the floor exposes the raw-MAD behaviour (the 1e-3
        # relative fallback is the only remaining guard): now flagged.
        reports = detect_anomalies(windows, queues=[1], threshold=4.0,
                                   min_scale_frac=0.0)
        assert [r.window_index for r in reports] == [3]
        assert abs(reports[0].z_score) >= 4.0

    def test_every_window_at_noise_floor_real_shift_still_flags(self):
        # The floor must not mask a genuine regime change: a 3x shift is
        # ~20 floor-scaled sigmas.
        windows = [_window(i, 1.0) for i in range(4)] + [_window(4, 3.0)]
        reports = detect_anomalies(windows, queues=[1], threshold=4.0,
                                   min_scale_frac=0.1)
        assert [r.window_index for r in reports] == [4]
        report = reports[0]
        assert report.baseline == pytest.approx(1.0)
        # Scale was the clamped floor, 0.1 * baseline.
        assert report.z_score == pytest.approx((3.0 - 1.0) / 0.1, rel=1e-6)
