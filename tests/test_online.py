"""Tests for windowed estimation and anomaly detection."""

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.errors import InferenceError
from repro.fsm import TaskPath
from repro.network import build_tandem_network
from repro.network.topology import QueueingNetwork
from repro.observation import TaskSampling
from repro.online import WindowedEstimator, detect_anomalies
from repro.simulate import PoissonArrivals, simulate_tasks


def simulate_with_degradation(n_tasks=600, fault_at=0.5, slow_factor=4.0, seed=0):
    """A tandem trace where q1's service degrades midway (fault injection)."""
    from repro.simulate import RateChange, simulate_with_faults

    net = build_tandem_network(4.0, [8.0, 10.0])
    horizon_estimate = n_tasks / 4.0
    fault_time = fault_at * horizon_estimate
    sim = simulate_with_faults(
        net, n_tasks,
        faults=[RateChange(queue=1, at=fault_time, rate=8.0 / slow_factor)],
        random_state=seed,
    )
    events = sim.events
    horizon = float(np.sort(events.departure[events.seq == 0])[-1])
    return events, horizon, fault_time


class TestWindowedEstimator:
    @pytest.fixture(scope="class")
    def windows(self):
        events, horizon, fault_time = simulate_with_degradation(seed=13)
        trace = TaskSampling(fraction=0.25).observe(events, random_state=1)
        estimator = WindowedEstimator(
            trace, window=horizon / 8, stem_iterations=30,
            min_observed_tasks=3, random_state=2,
        )
        return estimator.run(), horizon, fault_time

    def test_windows_cover_horizon(self, windows):
        results, horizon, _ = windows
        assert results[0].t_start == 0.0
        assert results[-1].t_end >= horizon

    def test_most_windows_estimate(self, windows):
        results, _, _ = windows
        ok = [w for w in results if w.ok]
        assert len(ok) >= len(results) - 2

    def test_degradation_visible_in_series(self, windows):
        results, _, fault_time = windows
        before = [w.mean_service(1) for w in results if w.ok and w.t_end <= fault_time]
        after = [w.mean_service(1) for w in results if w.ok and w.t_start >= fault_time]
        assert before and after
        # Mean service at q1 quadruples after the fault.
        assert np.median(after) > 2.0 * np.median(before)

    def test_healthy_queue_stable(self, windows):
        results, _, fault_time = windows
        before = [w.mean_service(2) for w in results if w.ok and w.t_end <= fault_time]
        after = [w.mean_service(2) for w in results if w.ok and w.t_start >= fault_time]
        assert np.median(after) < 2.0 * np.median(before)

    def test_validation(self, tandem_trace):
        with pytest.raises(InferenceError):
            WindowedEstimator(tandem_trace, window=-1.0)
        with pytest.raises(InferenceError):
            WindowedEstimator(tandem_trace, window=1.0, step=0.0)


class TestAnomalyDetection:
    def test_fault_flagged_on_right_queue(self):
        events, horizon, fault_time = simulate_with_degradation(seed=29)
        trace = TaskSampling(fraction=0.25).observe(events, random_state=3)
        estimator = WindowedEstimator(
            trace, window=horizon / 8, stem_iterations=30, random_state=4,
        )
        windows = estimator.run()
        reports = detect_anomalies(windows, threshold=4.0)
        assert reports, "the injected degradation was not detected"
        flagged_queues = {r.queue for r in reports}
        assert 1 in flagged_queues
        # The first flag lands at or after the fault.
        first = min(
            (r for r in reports if r.queue == 1), key=lambda r: r.window_index
        )
        assert first.t_end >= fault_time * 0.8

    def test_no_flags_on_healthy_trace(self, tandem_sim):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=5)
        horizon = float(np.nanmax(tandem_sim.events.departure))
        estimator = WindowedEstimator(
            trace, window=horizon / 5, stem_iterations=30, random_state=6,
        )
        windows = estimator.run()
        reports = detect_anomalies(windows, threshold=6.0)
        assert reports == []

    def test_empty_windows(self):
        assert detect_anomalies([]) == []

    def test_threshold_validation(self):
        with pytest.raises(InferenceError):
            detect_anomalies([], threshold=0.0)
