"""Tests for the simulated movie-voting web application."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.webapp import (
    WebAppConfig,
    build_webapp_network,
    generate_webapp_trace,
    paper_webapp_config,
)


class TestConfig:
    def test_paper_numbers(self):
        config = paper_webapp_config()
        assert config.n_requests == 5759
        assert config.n_events == 23036  # the paper's event count
        assert config.duration == pytest.approx(1800.0)
        assert config.n_web_servers == 10

    def test_balancer_weights(self):
        config = WebAppConfig(n_web_servers=4, starved_weight=0.01)
        weights = config.balancer_weights()
        assert weights.sum() == pytest.approx(1.0)
        assert weights[-1] < weights[0] / 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WebAppConfig(n_requests=0)
        with pytest.raises(ConfigurationError):
            WebAppConfig(web_rate=-1.0)
        with pytest.raises(ConfigurationError):
            WebAppConfig(starved_weight=0.0)


class TestNetwork:
    def test_queue_layout(self):
        net = build_webapp_network()
        # arrivals + network + 10 web + db = 13.
        assert net.n_queues == 13
        assert net.queue_names[1] == "network"
        assert net.queue_names[-1] == "db"

    def test_every_path_is_network_web_db_network(self, rng):
        net = build_webapp_network()
        for _ in range(25):
            path = net.sample_path(rng)
            assert len(path) == 4
            assert path.queues[0] == 1
            assert 2 <= path.queues[1] <= 11
            assert path.queues[2] == 12
            assert path.queues[3] == 1

    def test_network_queue_visited_twice(self):
        net = build_webapp_network()
        visits = net.fsm.expected_visits()
        assert visits[1] == pytest.approx(2.0)


class TestTraceGeneration:
    @pytest.fixture(scope="class")
    def small_trace(self):
        config = WebAppConfig(n_requests=400, duration=150.0)
        return generate_webapp_trace(config, random_state=77), config

    def test_event_count(self, small_trace):
        sim, config = small_trace
        assert sim.events.n_events == config.n_requests * 5  # incl. initial
        non_init = int(np.count_nonzero(sim.events.seq != 0))
        assert non_init == config.n_events

    def test_trace_valid(self, small_trace):
        sim, _ = small_trace
        sim.events.validate()

    def test_load_ramps_up(self, small_trace):
        sim, config = small_trace
        entries = np.sort(sim.events.departure[sim.events.seq == 0])
        midpoint = config.duration / 2.0
        late = np.count_nonzero(entries > midpoint)
        # With rate ∝ t, 75% of requests arrive in the second half.
        assert late / entries.size == pytest.approx(0.75, abs=0.06)

    def test_one_server_starved(self, small_trace):
        sim, config = small_trace
        counts = sim.events.events_per_queue()
        web_counts = counts[2:12]
        assert web_counts[-1] < web_counts[:-1].min() / 5

    def test_starved_request_count_matches_paper_scale(self):
        """At full scale the starved server gets on the order of 19 requests."""
        config = paper_webapp_config()
        weights = config.balancer_weights()
        expected = weights[-1] * config.n_requests
        assert 10 < expected < 40
