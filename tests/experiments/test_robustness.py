"""Tests for the misspecification-robustness experiment."""

import pytest

from repro.distributions import Exponential
from repro.experiments.robustness import run_robustness, service_family


class TestServiceFamily:
    @pytest.mark.parametrize(
        "name,scv",
        [
            ("deterministic", 0.0),
            ("erlang4", 0.25),
            ("exponential", 1.0),
            ("lognormal2", 2.0),
        ],
    )
    def test_scv_values(self, name, scv):
        dist = service_family(name, mean=0.2)
        assert dist.mean == pytest.approx(0.2, rel=1e-9)
        assert dist.scv == pytest.approx(scv, abs=1e-9)

    def test_hyperexp_is_bursty(self):
        dist = service_family("hyperexp4", mean=0.2)
        assert dist.mean == pytest.approx(0.2, rel=1e-9)
        assert dist.scv > 2.0

    def test_exponential_is_exponential(self):
        assert isinstance(service_family("exponential", 0.5), Exponential)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            service_family("pareto", 0.2)


class TestRunRobustness:
    def test_tiny_sweep(self):
        points = run_robustness(
            families=("exponential", "deterministic"),
            n_tasks=120,
            n_repetitions=1,
            stem_iterations=25,
            random_state=5,
        )
        assert len(points) == 2
        for p in points:
            assert p.mean_abs_error >= 0.0
            assert p.relative_error == pytest.approx(p.mean_abs_error / 0.2)

    def test_correct_specification_is_accurate(self):
        points = run_robustness(
            families=("exponential",),
            n_tasks=300,
            n_repetitions=2,
            stem_iterations=50,
            random_state=6,
        )
        assert points[0].relative_error < 0.5
