"""Tests for the experiment drivers (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    Fig4Config,
    Fig5Config,
    paper_fig4_config,
    paper_fig5_config,
    quartile_row,
    render_table,
    run_fig4,
    run_fig5,
    run_variance_comparison,
)
from repro.network import paper_synthetic_structures
from repro.webapp import WebAppConfig


def tiny_fig4():
    return Fig4Config(
        structures=tuple(paper_synthetic_structures()[:1]),
        fractions=(0.1, 0.25),
        n_tasks=80,
        n_repetitions=2,
        stem_iterations=20,
        posterior_samples=5,
        posterior_burn_in=2,
    )


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(tiny_fig4(), random_state=0)

    def test_point_count(self, result):
        # 1 structure x 2 reps x 2 fractions x 7 queues.
        assert len(result.points) == 2 * 2 * 7

    def test_errors_are_nonnegative(self, result):
        for p in result.points:
            assert p.service_error >= 0.0
            assert p.waiting_error >= 0.0

    def test_panel_quartiles(self, result):
        panels = result.panel_quartiles("service")
        assert set(panels) == {0.1, 0.25}
        for row in panels.values():
            assert row["q1"] <= row["median"] <= row["q3"]

    def test_median_error_extraction(self, result):
        med = result.median_error(0.25, "service")
        assert np.isfinite(med)

    def test_paper_config_scale(self):
        config = paper_fig4_config()
        assert len(config.structures) == 5
        assert config.n_tasks == 1000
        assert config.n_repetitions == 10
        assert config.fractions == (0.05, 0.10, 0.25)


class TestVariance:
    def test_comparison_fields(self):
        comparison = run_variance_comparison(tiny_fig4(), fraction=0.1, random_state=1)
        assert comparison.stem_variance > 0.0
        assert comparison.baseline_variance > 0.0
        assert comparison.n_cells == 7
        assert np.isfinite(comparison.variance_ratio)
        assert comparison.stem_mean_error > 0.0


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig5Config(
            webapp=WebAppConfig(n_requests=150, duration=80.0),
            fractions=(0.2, 0.5),
            stem_iterations=15,
            posterior_samples=4,
            posterior_burn_in=2,
        )
        return run_fig5(config, random_state=2)

    def test_series_present(self, result):
        assert set(result.service) == {0.2, 0.5}
        assert result.service[0.2].shape == (13,)
        assert result.true_service is not None

    def test_starved_queue_detection(self, result):
        starved = result.starved_queue()
        assert result.queue_names[starved].startswith("web-")

    def test_stability_spread(self, result):
        spread = result.stability_spread(q=12, min_fraction=0.2)
        assert spread >= 0.0

    def test_paper_config_scale(self):
        config = paper_fig5_config()
        assert config.webapp.n_requests == 5759
        assert max(config.fractions) == 0.50


class TestResultsHelpers:
    def test_quartile_row(self):
        row = quartile_row([1.0, 2.0, 3.0, 4.0, 100.0])
        assert row["median"] == 3.0
        assert row["min"] == 1.0
        assert row["max"] == 100.0

    def test_quartile_row_ignores_nan(self):
        row = quartile_row([np.nan, 2.0])
        assert row["median"] == 2.0

    def test_quartile_row_all_nan(self):
        row = quartile_row([np.nan])
        assert np.isnan(row["median"])

    def test_render_table(self):
        text = render_table(
            ["name", "value"], [("a", 1.23456), ("b", float("nan"))], title="T"
        )
        assert "T" in text
        assert "1.235" in text
        assert "nan" in text
