"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_three_tier_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main([
            "simulate", "--topology", "three-tier", "--tasks", "50",
            "--seed", "1", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "wrote 200 events" in captured

    def test_tandem(self, tmp_path, capsys):
        out = tmp_path / "tandem.jsonl"
        code = main([
            "simulate", "--topology", "tandem", "--tasks", "30",
            "--servers", "1", "2", "--out", str(out),
        ])
        assert code == 0
        assert "q1" in capsys.readouterr().out

    def test_webapp(self, tmp_path, capsys):
        out = tmp_path / "webapp.jsonl"
        code = main([
            "simulate", "--topology", "webapp", "--tasks", "60", "--out", str(out),
        ])
        assert code == 0
        assert "network" in capsys.readouterr().out


class TestInfer:
    def test_infer_pipeline(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "80",
            "--arrival-rate", "4", "--service-rate", "8",
            "--servers", "1", "2", "--seed", "3", "--out", str(out),
        ])
        capsys.readouterr()
        code = main([
            "infer", str(out), "--observe", "0.3", "--iterations", "25",
            "--seed", "0",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "estimated arrival rate" in text
        assert "bottleneck ranking" in text
        assert "verdict" in text

    def test_infer_sharded(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "80",
            "--arrival-rate", "4", "--service-rate", "8",
            "--servers", "1", "2", "--seed", "3", "--out", str(out),
        ])
        capsys.readouterr()
        code = main([
            "infer", str(out), "--observe", "0.3", "--iterations", "20",
            "--seed", "0", "--shards", "2",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "estimated arrival rate" in text
        assert "bottleneck ranking" in text

    def test_infer_rejects_bad_shards(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "20",
            "--servers", "1", "2", "--out", str(out),
        ])
        with pytest.raises(SystemExit):
            main(["infer", str(out), "--shards", "0"])
        with pytest.raises(SystemExit, match="array kernel"):
            main(["infer", str(out), "--shards", "2", "--kernel", "object"])
        with pytest.raises(SystemExit, match="--threads"):
            main(["infer", str(out), "--threads", "0"])

    def test_infer_threads_and_native_round_trip(self, tmp_path, capsys):
        """--threads and --kernel native reach the sampler through the CLI
        (pre-fix, no command exposed GibbsSampler's threads at all)."""
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "60",
            "--arrival-rate", "4", "--service-rate", "8",
            "--servers", "1", "2", "--seed", "3", "--out", str(out),
        ])
        capsys.readouterr()
        baseline = main([
            "infer", str(out), "--observe", "0.3", "--iterations", "10",
            "--seed", "0",
        ])
        plain = capsys.readouterr().out
        code = main([
            "infer", str(out), "--observe", "0.3", "--iterations", "10",
            "--seed", "0", "--kernel", "array", "--threads", "2",
        ])
        threaded = capsys.readouterr().out
        assert baseline == 0 and code == 0
        # Same seed, bitwise the same estimates: threads never change a draw.
        line = next(l for l in plain.splitlines() if "arrival rate" in l)
        assert line in threaded
        # The native lowering is accepted end to end (compiled when numba
        # is present, the array fallback otherwise).
        code = main([
            "infer", str(out), "--observe", "0.3", "--iterations", "10",
            "--seed", "0", "--kernel", "native", "--threads", "2",
        ])
        assert code == 0
        assert "arrival rate" in capsys.readouterr().out

    def test_infer_multichain(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "60",
            "--arrival-rate", "4", "--service-rate", "8",
            "--servers", "1", "2", "--seed", "3", "--out", str(out),
        ])
        capsys.readouterr()
        code = main([
            "infer", str(out), "--observe", "0.3", "--iterations", "15",
            "--seed", "0", "--chains", "3",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "split-Rhat" in text
        assert "3 chains" in text
        assert "bottleneck ranking" in text


class TestStream:
    def test_stream_pipeline_with_warm_shard_workers(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "150",
            "--arrival-rate", "4", "--service-rate", "8",
            "--servers", "1", "2", "--seed", "3", "--out", str(out),
        ])
        capsys.readouterr()
        code = main([
            "stream", str(out), "--observe", "0.3", "--windows", "3",
            "--iterations", "8", "--seed", "0", "--shards", "2",
            "--shard-workers", "2",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "streaming window estimates" in text
        assert "anomal" in text  # either the table or "no anomalies flagged"

    def test_stream_serial_and_cold_workers(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "100",
            "--servers", "1", "2", "--seed", "5", "--out", str(out),
        ])
        capsys.readouterr()
        code = main([
            "stream", str(out), "--observe", "0.3", "--windows", "2",
            "--iterations", "6", "--seed", "1",
        ])
        assert code == 0
        assert "win" in capsys.readouterr().out
        code = main([
            "stream", str(out), "--observe", "0.3", "--windows", "2",
            "--iterations", "6", "--seed", "1", "--shards", "2",
            "--shard-workers", "1", "--cold",
        ])
        assert code == 0
        assert "win" in capsys.readouterr().out


class TestServeIngest:
    def _free_port(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_serve_and_ingest_round_trip(self, tmp_path, capsys):
        import threading
        import time

        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "120",
            "--arrival-rate", "4", "--service-rate", "8",
            "--servers", "1", "2", "--seed", "3", "--out", str(out),
        ])
        capsys.readouterr()
        port = self._free_port()
        codes = {}

        def serve():
            codes["serve"] = main([
                "serve", "--queues", "3", "--window", "12",
                "--port", str(port), "--authkey", "test-key",
                "--iterations", "6", "--seed", "0",
            ])

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        time.sleep(0.3)
        codes["ingest"] = main([
            "ingest", str(out), "--connect", f"127.0.0.1:{port}",
            "--authkey", "test-key", "--observe", "0.3",
            "--wait", "--shutdown",
        ])
        thread.join(30.0)
        assert not thread.is_alive()
        assert codes == {"serve": 0, "ingest": 0}
        text = capsys.readouterr().out
        assert "listening on" in text
        assert "published window estimates" in text
        assert "shutdown requested" in text

    def test_serve_validation(self):
        with pytest.raises(SystemExit, match="--queues and --window"):
            main(["serve"])
        with pytest.raises(SystemExit, match="window must be positive"):
            main(["serve", "--queues", "3", "--window", "0"])
        with pytest.raises(SystemExit, match="--shard-workers requires"):
            main(["serve", "--queues", "3", "--window", "1",
                  "--shard-workers", "2"])
        with pytest.raises(SystemExit, match="--restore resumes"):
            main(["serve", "--restore", "x.ckpt", "--window", "1"])
        # Every estimator/stream flag is frozen by the checkpoint; passing
        # one must be an error, not a silent ignore.
        with pytest.raises(SystemExit, match="--shards"):
            main(["serve", "--restore", "x.ckpt", "--shards", "4"])
        with pytest.raises(SystemExit, match="--lateness"):
            main(["serve", "--restore", "x.ckpt", "--lateness", "5"])
        with pytest.raises(SystemExit, match="--kernel"):
            main(["serve", "--restore", "x.ckpt", "--kernel", "native"])
        with pytest.raises(SystemExit, match="--threads"):
            main(["serve", "--restore", "x.ckpt", "--threads", "2"])
        with pytest.raises(SystemExit, match="cannot restore"):
            main(["serve", "--restore", "/nonexistent/x.ckpt"])

    def test_ingest_validation(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "20",
            "--servers", "1", "2", "--out", str(out),
        ])
        with pytest.raises(SystemExit, match="host:port"):
            main(["ingest", str(out), "--connect", "nonsense"])
        with pytest.raises(SystemExit, match="--speedup"):
            main(["ingest", str(out), "--speedup", "-1"])
        with pytest.raises(SystemExit, match="--batch"):
            main(["ingest", str(out), "--batch", "0"])
        with pytest.raises(SystemExit, match="cannot connect"):
            main(["ingest", str(out),
                  "--connect", f"127.0.0.1:{self._free_port()}"])

    def test_top_one_shot(self, tmp_path, capsys):
        import threading
        import time

        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "120",
            "--arrival-rate", "4", "--service-rate", "8",
            "--servers", "1", "2", "--seed", "3", "--out", str(out),
        ])
        capsys.readouterr()
        port = self._free_port()
        codes = {}

        def serve():
            codes["serve"] = main([
                "serve", "--queues", "3", "--window", "12",
                "--port", str(port), "--authkey", "test-key",
                "--iterations", "6", "--seed", "0",
            ])

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        time.sleep(0.3)
        codes["ingest"] = main([
            "ingest", str(out), "--connect", f"127.0.0.1:{port}",
            "--authkey", "test-key", "--observe", "0.3", "--wait",
        ])
        capsys.readouterr()
        codes["top"] = main([
            "top", "--connect", f"127.0.0.1:{port}",
            "--authkey", "test-key", "--once",
        ])
        frame = capsys.readouterr().out
        assert codes["top"] == 0
        assert "repro top" in frame
        assert "arrival λ" in frame
        assert "phase latency" in frame
        assert "ingest  admitted" in frame
        # Shut the server down so the serve thread exits cleanly.
        from repro.live import LiveClient

        with LiveClient(("127.0.0.1", port), authkey=b"test-key") as client:
            client.shutdown()
        thread.join(30.0)
        assert not thread.is_alive()

    def test_top_validation(self):
        with pytest.raises(SystemExit, match="host:port"):
            main(["top", "--connect", "nonsense", "--once"])
        with pytest.raises(SystemExit, match="--interval"):
            main(["top", "--interval", "0", "--once"])
        with pytest.raises(SystemExit, match="cannot connect"):
            main(["top", "--connect", f"127.0.0.1:{self._free_port()}",
                  "--once"])


class TestArgumentErrors:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig9"])

    def test_stream_rejects_bad_shards(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        main([
            "simulate", "--topology", "tandem", "--tasks", "30",
            "--servers", "1", "2", "--out", str(out),
        ])
        with pytest.raises(SystemExit):
            main(["stream", str(out), "--shards", "0"])
        with pytest.raises(SystemExit):
            main(["stream", str(out), "--shards", "2", "--shard-workers", "0"])
        with pytest.raises(SystemExit):
            main(["stream", str(out), "--window", "0"])
        with pytest.raises(SystemExit):
            main(["stream", str(out), "--step", "-1"])
        with pytest.raises(SystemExit):
            main(["stream", str(out), "--windows", "0"])
        with pytest.raises(SystemExit):  # transport without workers: no-op combo
            main(["stream", str(out), "--transport", "socket"])
        with pytest.raises(SystemExit):  # cold without workers: no-op combo
            main(["stream", str(out), "--cold"])
