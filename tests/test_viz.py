"""Tests for ASCII visualization."""

import numpy as np
import pytest

from repro.viz import boxplot_panel, series_panel, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series(self):
        s = sparkline([0.0, 1.0, 2.0, 3.0])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_nan_renders_blank(self):
        s = sparkline([1.0, float("nan"), 2.0])
        assert s[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_pinned_scale(self):
        s = sparkline([0.5], lo=0.0, hi=1.0)
        assert s in "▄▅"


class TestSeriesPanel:
    def test_contains_names_and_values(self):
        text = series_panel(
            {"web": [0.1, 0.2, 0.3], "db": [0.05, 0.05, 0.04]},
            title="estimates",
        )
        assert "estimates" in text
        assert "web" in text and "db" in text
        assert "0.300" in text
        assert "scale:" in text

    def test_shared_scale(self):
        text = series_panel({"a": [0.0, 10.0], "b": [5.0, 5.0]})
        # b sits mid-scale, so neither bottom nor top tick.
        b_line = [ln for ln in text.splitlines() if ln.startswith("b")][0]
        assert "▁▁" not in b_line.split()[1]

    def test_handles_nan_tail(self):
        text = series_panel({"a": [1.0, float("nan")]})
        assert "1.000" in text


class TestBoxplotPanel:
    def test_structure(self, rng):
        data = {
            "5%": rng.exponential(1.0, size=50).tolist(),
            "25%": (rng.exponential(0.2, size=50)).tolist(),
        }
        text = boxplot_panel(data, title="Figure 4")
        assert "Figure 4" in text
        assert "median" in text
        for key in data:
            assert key in text
        # Median marker present in each box row.
        rows = [ln for ln in text.splitlines() if "median" in ln]
        assert len(rows) == 2
        assert all("|" in row for row in rows)

    def test_medians_ordered_visually(self, rng):
        small = np.full(20, 0.1)
        large = np.full(20, 0.9)
        text = boxplot_panel({"small": small, "large": large}, width=40)
        rows = {ln.split()[0]: ln for ln in text.splitlines() if "median" in ln}
        assert rows["small"].index("|") < rows["large"].index("|")

    def test_empty_groups(self):
        assert boxplot_panel({}, title="t") == "t"

    def test_nan_filtered(self):
        text = boxplot_panel({"a": [float("nan"), 1.0, 2.0]})
        assert "median 1.5" in text
