"""Tests for network builders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import (
    build_load_balanced_network,
    build_tandem_network,
    build_three_tier_network,
    paper_synthetic_structures,
)


class TestThreeTier:
    def test_paper_configuration(self):
        net = build_three_tier_network(10.0, (1, 2, 4))
        # 1 + 1 + 2 + 4 = 8 queues total.
        assert net.n_queues == 8
        assert net.arrival_rate == 10.0
        rho = net.utilizations()
        # Tier loads: 2.0 (1 server), 1.0 each (2 servers), 0.5 each (4 servers).
        assert rho[1] == pytest.approx(2.0)
        assert rho[2] == pytest.approx(1.0)
        assert rho[4] == pytest.approx(0.5)

    def test_tier_naming(self):
        net = build_three_tier_network(10.0, (1, 2, 4))
        assert "web" in net.queue_names
        assert "app-0" in net.queue_names and "app-1" in net.queue_names
        assert "db-3" in net.queue_names

    def test_paths_visit_one_server_per_tier(self, rng):
        net = build_three_tier_network(10.0, (2, 2, 2))
        for _ in range(20):
            path = net.sample_path(rng)
            assert len(path) == 3

    def test_rejects_zero_servers(self):
        with pytest.raises(ConfigurationError):
            build_three_tier_network(10.0, (1, 0, 2))

    def test_rejects_name_mismatch(self):
        with pytest.raises(ConfigurationError):
            build_three_tier_network(10.0, (1, 2), tier_names=("a", "b", "c"))


class TestPaperStructures:
    def test_five_distinct_structures(self):
        structures = paper_synthetic_structures()
        assert len(structures) == 5
        assert len({s for _, s in structures}) == 5
        for _, servers in structures:
            assert sorted(servers) == [1, 2, 4]

    def test_all_structures_buildable(self):
        for _, servers in paper_synthetic_structures():
            net = build_three_tier_network(10.0, servers)
            assert net.n_queues == 8


class TestTandem:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            build_tandem_network(1.0, [])

    def test_custom_names(self):
        net = build_tandem_network(1.0, [2.0, 3.0], names=["cpu", "disk"])
        assert net.queue_index("disk") == 2


class TestLoadBalanced:
    def test_webapp_like_topology(self, rng):
        net = build_load_balanced_network(
            arrival_rate=3.0,
            server_rates=[4.0] * 3,
            pre=[("net", 20.0)],
            post=[("db", 40.0), ("net", 20.0)],
        )
        # __arrivals__, net, 3 servers, db.
        assert net.n_queues == 6
        path = net.sample_path(rng)
        assert net.queue_names[path.queues[0]] == "net"
        assert net.queue_names[path.queues[-1]] == "net"
        assert net.queue_names[path.queues[2]] == "db"

    def test_shared_station_rate_conflict(self):
        with pytest.raises(ConfigurationError):
            build_load_balanced_network(
                arrival_rate=1.0,
                server_rates=[2.0],
                pre=[("net", 20.0)],
                post=[("net", 10.0)],  # same name, different rate
            )

    def test_expected_visits_count_revisits(self):
        net = build_load_balanced_network(
            arrival_rate=3.0,
            server_rates=[4.0, 4.0],
            pre=[("net", 20.0)],
            post=[("net", 20.0)],
        )
        visits = net.fsm.expected_visits()
        assert visits[net.queue_index("net")] == pytest.approx(2.0)
