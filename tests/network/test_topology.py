"""Tests for QueueingNetwork and QueueSpec."""

import numpy as np
import pytest

from repro.distributions import Exponential, LogNormal
from repro.errors import ConfigurationError
from repro.fsm import chain_fsm
from repro.network import QueueingNetwork, QueueSpec, build_tandem_network
from repro.network.topology import INITIAL_QUEUE_NAME


class TestQueueSpec:
    def test_markovian_flag(self):
        spec = QueueSpec(name="db", service=Exponential(rate=3.0))
        assert spec.is_markovian
        assert spec.rate == 3.0
        assert spec.mean_service == pytest.approx(1.0 / 3.0)

    def test_non_markovian_rate_raises(self):
        spec = QueueSpec(name="db", service=LogNormal(mu_log=0.0, sigma_log=1.0))
        assert not spec.is_markovian
        with pytest.raises(ConfigurationError):
            _ = spec.rate

    def test_with_service(self):
        spec = QueueSpec(name="db", service=Exponential(rate=3.0))
        new = spec.with_service(Exponential(rate=5.0))
        assert new.rate == 5.0
        assert spec.rate == 3.0  # original untouched

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            QueueSpec(name="", service=Exponential(rate=1.0))

    def test_rejects_non_distribution(self):
        with pytest.raises(ConfigurationError):
            QueueSpec(name="x", service=0.5)


class TestNetworkValidation:
    def test_requires_reserved_initial_name(self):
        fsm = chain_fsm([1], n_queues=2)
        with pytest.raises(ConfigurationError):
            QueueingNetwork(
                queue_names=("q0", "q1"),
                services={"q0": Exponential(1.0), "q1": Exponential(1.0)},
                fsm=fsm,
            )

    def test_requires_unique_names(self):
        fsm = chain_fsm([1], n_queues=3)
        with pytest.raises(ConfigurationError):
            QueueingNetwork(
                queue_names=(INITIAL_QUEUE_NAME, "a", "a"),
                services={INITIAL_QUEUE_NAME: Exponential(1.0), "a": Exponential(1.0)},
                fsm=fsm,
            )

    def test_requires_matching_fsm_width(self):
        fsm = chain_fsm([1], n_queues=3)
        with pytest.raises(ConfigurationError):
            QueueingNetwork(
                queue_names=(INITIAL_QUEUE_NAME, "a"),
                services={INITIAL_QUEUE_NAME: Exponential(1.0), "a": Exponential(1.0)},
                fsm=fsm,
            )

    def test_reports_missing_services(self):
        fsm = chain_fsm([1], n_queues=2)
        with pytest.raises(ConfigurationError, match="missing"):
            QueueingNetwork(
                queue_names=(INITIAL_QUEUE_NAME, "a"),
                services={INITIAL_QUEUE_NAME: Exponential(1.0)},
                fsm=fsm,
            )


class TestNetworkQueries:
    def test_tandem_basics(self):
        net = build_tandem_network(arrival_rate=4.0, service_rates=[6.0, 8.0])
        assert net.n_queues == 3
        assert net.arrival_rate == 4.0
        assert net.queue_index("q1") == 1
        assert net.service_of(2).mean == pytest.approx(0.125)
        assert net.service_of("q2").mean == pytest.approx(0.125)
        assert net.is_markovian()

    def test_unknown_queue_name(self):
        net = build_tandem_network(4.0, [6.0])
        with pytest.raises(ConfigurationError):
            net.queue_index("nope")

    def test_rates_vector(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        np.testing.assert_allclose(net.rates_vector(), [4.0, 6.0, 8.0])

    def test_with_rates_round_trip(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        new = net.with_rates([5.0, 7.0, 9.0])
        np.testing.assert_allclose(new.rates_vector(), [5.0, 7.0, 9.0])
        np.testing.assert_allclose(net.rates_vector(), [4.0, 6.0, 8.0])

    def test_with_rates_shape_check(self):
        net = build_tandem_network(4.0, [6.0])
        with pytest.raises(ConfigurationError):
            net.with_rates([1.0, 2.0, 3.0])

    def test_utilizations(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        rho = net.utilizations()
        assert np.isnan(rho[0])
        assert rho[1] == pytest.approx(4.0 / 6.0)
        assert rho[2] == pytest.approx(0.5)

    def test_per_queue_arrival_rates(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        np.testing.assert_allclose(net.per_queue_arrival_rates(), [4.0, 4.0, 4.0])

    def test_describe_mentions_all_queues(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        text = net.describe()
        assert "q1" in text and "q2" in text and INITIAL_QUEUE_NAME in text
