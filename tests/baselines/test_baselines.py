"""Tests for the baseline estimators."""

import numpy as np
import pytest

from repro.baselines import (
    complete_data_mle,
    observed_mean_service,
    observed_mean_waiting,
    steady_state_fit,
)
from repro.errors import ObservationError
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


class TestObservedMean:
    def test_uses_only_observed_tasks(self, tandem_sim):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        est = observed_mean_service(tandem_sim.events, trace)
        ev = tandem_sim.events
        services = ev.service_times()
        # Recompute manually for queue 1.
        observed_tasks = [
            t for t in ev.task_ids
            if trace.arrival_observed[ev.events_of_task(t)[1]]
        ]
        manual = np.mean([
            services[e]
            for t in observed_tasks
            for e in ev.events_of_task(t)
            if ev.queue[e] == 1
        ])
        assert est[1] == pytest.approx(manual)

    def test_full_observation_equals_truth(self, tandem_sim):
        trace = TaskSampling(fraction=1.0).observe(tandem_sim.events, random_state=0)
        est = observed_mean_service(tandem_sim.events, trace)
        np.testing.assert_allclose(est, tandem_sim.events.mean_service_by_queue())

    def test_nan_for_starved_queue(self):
        """A queue that served no observed task gets nan (paper's web-9)."""
        from repro.network import build_load_balanced_network

        net = build_load_balanced_network(
            arrival_rate=2.0, server_rates=[5.0, 5.0], weights=[0.999, 0.001]
        )
        sim = simulate_network(net, 200, random_state=42)
        trace = TaskSampling(fraction=0.05).observe(sim.events, random_state=1)
        est = observed_mean_service(sim.events, trace)
        starved = net.queue_index("server-1")
        if sim.events.queue_order(starved).size == 0 or np.isnan(est[starved]):
            assert True  # starved server unobserved, as designed
        else:
            pytest.skip("random draw observed the starved server")

    def test_waiting_variant(self, tandem_sim):
        trace = TaskSampling(fraction=0.5).observe(tandem_sim.events, random_state=2)
        waits = observed_mean_waiting(tandem_sim.events, trace)
        assert np.all(waits[1:] >= 0.0)

    def test_mismatched_trace_rejected(self, tandem_sim, three_tier_sim):
        trace = TaskSampling(fraction=0.3).observe(three_tier_sim.events, random_state=0)
        with pytest.raises(ObservationError):
            observed_mean_service(tandem_sim.events, trace)


class TestCompleteMLE:
    def test_matches_mstep(self, tandem_sim):
        rates = complete_data_mle(tandem_sim.events)
        services = tandem_sim.events.service_times()
        members = tandem_sim.events.queue_order(1)
        assert rates[1] == pytest.approx(members.size / services[members].sum())

    def test_is_accuracy_ceiling(self):
        """StEM at 100% observation equals the complete-data MLE."""
        from repro.inference import run_stem

        net = build_tandem_network(4.0, [6.0])
        sim = simulate_network(net, 150, random_state=3)
        trace = TaskSampling(fraction=1.0).observe(sim.events, random_state=0)
        stem = run_stem(trace, n_iterations=5, random_state=0, init_method="heuristic")
        np.testing.assert_allclose(stem.rates, complete_data_mle(sim.events), rtol=1e-6)


class TestSteadyStateFit:
    def test_reasonable_on_stable_queue(self):
        net = build_tandem_network(2.0, [8.0])
        sim = simulate_network(net, 3000, random_state=17)
        trace = TaskSampling(fraction=0.5).observe(sim.events, random_state=1)
        rates = steady_state_fit(trace)
        # mu = lambda + 1/E[R]; with rho=0.25 this lands near 8.
        assert rates[1] == pytest.approx(8.0, rel=0.2)

    def test_degenerates_on_overloaded_queue(self, three_tier_sim):
        """On a rho=2 queue the M/M/1 inversion carries no service
        information: responses are waiting-dominated, so the fitted rate is
        just the arrival-rate term plus epsilon — the formula answers with
        throughput whatever the true service rate is (the paper's argument
        for posterior inference)."""
        trace = TaskSampling(fraction=0.5).observe(
            three_tier_sim.events, random_state=1
        )
        rates = steady_state_fit(trace)
        skeleton = trace.skeleton
        responses = []
        for e in range(skeleton.n_events):
            if (
                skeleton.queue[e] == 1
                and trace.arrival_observed[e]
                and trace.departure_is_fixed(e)
            ):
                responses.append(skeleton.departure[e] - skeleton.arrival[e])
        response_term = 1.0 / np.mean(responses)
        # The service-information term contributes under 10 % of the answer.
        assert response_term / rates[1] < 0.1

    def test_nan_without_responses(self, tandem_sim):
        trace = TaskSampling(fraction=0.02).observe(tandem_sim.events, random_state=1)
        rates = steady_state_fit(trace)
        assert rates.shape == (tandem_sim.events.n_queues,)
