"""Tests for observation schemes."""

import numpy as np
import pytest

from repro.errors import ObservationError
from repro.observation import EventSampling, TaskSampling, TimeWindowSampling


class TestTaskSampling:
    def test_observes_whole_tasks(self, tandem_sim):
        trace = TaskSampling(fraction=0.25).observe(tandem_sim.events, random_state=0)
        ev = tandem_sim.events
        for task_id in ev.task_ids:
            idx = ev.events_of_task(task_id)
            non_init = idx[ev.seq[idx] != 0]
            flags = trace.arrival_observed[non_init]
            assert flags.all() or not flags.any()

    def test_fraction_respected(self, tandem_sim):
        trace = TaskSampling(fraction=0.25).observe(tandem_sim.events, random_state=0)
        observed_tasks = round(0.25 * tandem_sim.n_tasks)
        # Each observed task contributes len(path) = 2 observed arrivals.
        assert trace.n_observed_arrivals == observed_tasks * 2

    def test_final_departures_observed(self, tandem_sim):
        trace = TaskSampling(fraction=0.25).observe(tandem_sim.events, random_state=0)
        ev = tandem_sim.events
        n_last_observed = sum(
            trace.departure_observed[ev.events_of_task(t)[-1]] for t in ev.task_ids
        )
        assert n_last_observed == round(0.25 * tandem_sim.n_tasks)

    def test_min_tasks_floor(self, tandem_sim):
        trace = TaskSampling(fraction=0.0001, min_tasks=2).observe(
            tandem_sim.events, random_state=0
        )
        assert trace.n_observed_arrivals == 2 * 2

    def test_rejects_bad_fraction(self):
        with pytest.raises(ObservationError):
            TaskSampling(fraction=0.0)
        with pytest.raises(ObservationError):
            TaskSampling(fraction=1.5)

    def test_different_seeds_pick_different_tasks(self, tandem_sim):
        a = TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=0)
        b = TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=1)
        assert not np.array_equal(a.arrival_observed, b.arrival_observed)

    def test_full_observation(self, tandem_sim):
        trace = TaskSampling(fraction=1.0).observe(tandem_sim.events, random_state=0)
        assert trace.n_latent == 0
        assert trace.observed_fraction() == 1.0


class TestEventSampling:
    def test_roughly_matches_fraction(self, tandem_sim):
        trace = EventSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        assert trace.observed_fraction() == pytest.approx(0.3, abs=0.1)

    def test_never_empty(self, tandem_sim):
        trace = EventSampling(fraction=1e-9).observe(tandem_sim.events, random_state=0)
        assert trace.n_observed_arrivals >= 1

    def test_final_departure_option(self, tandem_sim):
        trace = EventSampling(fraction=0.5, observe_final_departures=True).observe(
            tandem_sim.events, random_state=0
        )
        assert trace.departure_observed.any()


class TestTimeWindowSampling:
    def test_only_window_arrivals(self, tandem_sim):
        ev = tandem_sim.events
        t_mid = float(np.nanmedian(ev.arrival[ev.seq != 0]))
        scheme = TimeWindowSampling(start=0.0, end=t_mid)
        trace = scheme.observe(ev)
        observed = np.flatnonzero(trace.arrival_observed & (ev.seq != 0))
        assert np.all(ev.arrival[observed] <= t_mid)

    def test_empty_window_rejected(self, tandem_sim):
        horizon = float(tandem_sim.events.departure.max())
        scheme = TimeWindowSampling(start=horizon + 10, end=horizon + 20)
        with pytest.raises(ObservationError):
            scheme.observe(tandem_sim.events)

    def test_invalid_bounds(self):
        with pytest.raises(ObservationError):
            TimeWindowSampling(start=2.0, end=1.0)
