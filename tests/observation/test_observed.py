"""Tests for ObservedTrace."""

import numpy as np
import pytest

from repro.errors import ObservationError
from repro.observation import ObservedTrace, TaskSampling
from repro.observation.counters import (
    counter_stream,
    order_recoverable_from_counters,
    unobserved_gap_counts,
)


class TestCensoring:
    def test_latent_times_are_nan(self, tandem_sim):
        trace = TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=0)
        skeleton = trace.skeleton
        lat = trace.latent_arrival_events
        assert np.all(np.isnan(skeleton.arrival[lat]))
        assert np.all(np.isnan(skeleton.departure[skeleton.pi[lat]]))
        lat_dep = trace.latent_departure_events
        assert np.all(np.isnan(skeleton.departure[lat_dep]))

    def test_observed_times_preserved(self, tandem_sim):
        trace = TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=0)
        obs = np.flatnonzero(trace.arrival_observed)
        np.testing.assert_allclose(
            trace.skeleton.arrival[obs], tandem_sim.events.arrival[obs]
        )

    def test_ground_truth_not_mutated(self, tandem_sim):
        before = tandem_sim.events.arrival.copy()
        TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=0)
        np.testing.assert_array_equal(before, tandem_sim.events.arrival)

    def test_initial_arrivals_always_observed(self, tandem_sim):
        trace = TaskSampling(fraction=0.1).observe(tandem_sim.events, random_state=0)
        init = trace.skeleton.seq == 0
        assert trace.arrival_observed[init].all()

    def test_latent_inventory_consistency(self, tandem_trace):
        skeleton = tandem_trace.skeleton
        n_non_init = int(np.count_nonzero(skeleton.seq != 0))
        n_last = skeleton.n_tasks
        expected = (
            (n_non_init - tandem_trace.n_observed_arrivals)
            + (n_last - int(tandem_trace.departure_observed.sum()))
        )
        assert tandem_trace.n_latent == expected

    def test_departure_is_fixed(self, tandem_sim):
        trace = TaskSampling(fraction=0.2).observe(tandem_sim.events, random_state=0)
        ev = trace.skeleton
        for task_id in ev.task_ids:
            idx = ev.events_of_task(task_id)
            observed = trace.arrival_observed[idx[-1]]
            # Inner events: departure fixed iff successor arrival observed.
            assert trace.departure_is_fixed(int(idx[1])) == bool(
                trace.arrival_observed[idx[2]] if idx.size > 2 else
                trace.departure_observed[idx[1]]
            ) or idx.size <= 2

    def test_rejects_inner_departure_observation(self, tandem_sim):
        ev = tandem_sim.events
        arrival_observed = np.zeros(ev.n_events, dtype=bool)
        departure_observed = np.zeros(ev.n_events, dtype=bool)
        inner = int(ev.events_of_task(0)[1])  # has a successor
        departure_observed[inner] = True
        with pytest.raises(ObservationError):
            ObservedTrace.from_ground_truth(ev, arrival_observed, departure_observed)


class TestCounters:
    def test_counter_stream_positions(self, tandem_trace):
        stream = counter_stream(tandem_trace)
        skeleton = tandem_trace.skeleton
        for q, pairs in stream.items():
            order = skeleton.queue_order(q)
            for position, event in pairs:
                assert order[position] == event
                assert tandem_trace.arrival_observed[event]

    def test_gap_counts_sum(self, tandem_trace):
        gaps = unobserved_gap_counts(tandem_trace)
        skeleton = tandem_trace.skeleton
        for q, gap_list in gaps.items():
            order = skeleton.queue_order(q)
            n_observed = int(tandem_trace.arrival_observed[order].sum())
            assert len(gap_list) == n_observed + 1
            assert sum(gap_list) == order.size - n_observed

    def test_order_recoverable(self, tandem_sim, tandem_trace):
        assert order_recoverable_from_counters(tandem_trace, tandem_sim.events)

    def test_summary_mentions_counts(self, tandem_trace):
        text = tandem_trace.summary()
        assert "arrivals observed" in text
        assert str(tandem_trace.skeleton.n_tasks) in text
