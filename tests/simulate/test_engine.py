"""Tests for the discrete-event simulation engine."""

import numpy as np
import pytest

from repro.distributions import Deterministic
from repro.errors import SimulationError
from repro.fsm import TaskPath
from repro.network import build_tandem_network, build_three_tier_network
from repro.network.topology import INITIAL_QUEUE_NAME, QueueingNetwork
from repro.fsm import chain_fsm
from repro.simulate import simulate_network, simulate_tasks


class TestSimulateTasks:
    def test_deterministic_tandem_by_hand(self):
        """Check the FIFO recursion against hand-computed times."""
        net = build_tandem_network(1.0, [1.0, 1.0])
        # Replace services with constants 0.5 and 0.25 for exactness.
        services = dict(net.services)
        services["q1"] = Deterministic(value=0.5)
        services["q2"] = Deterministic(value=0.25)
        net = QueueingNetwork(
            queue_names=net.queue_names, services=services, fsm=net.fsm
        )
        entries = np.array([1.0, 1.1, 3.0])
        paths = [TaskPath.from_queues([1, 2])] * 3
        sim = simulate_tasks(net, entries, paths, random_state=0)
        ev = sim.events
        # Task 0: q1 1.0->1.5, q2 1.5->1.75
        # Task 1: q1 arrives 1.1, waits to 1.5, departs 2.0; q2 2.0->2.25
        # Task 2: q1 3.0->3.5; q2 3.5->3.75
        t0, t1, t2 = (ev.events_of_task(k) for k in range(3))
        assert ev.departure[t0[1]] == pytest.approx(1.5)
        assert ev.departure[t0[2]] == pytest.approx(1.75)
        assert ev.departure[t1[1]] == pytest.approx(2.0)
        assert ev.departure[t1[2]] == pytest.approx(2.25)
        assert ev.departure[t2[1]] == pytest.approx(3.5)
        waits = ev.waiting_times()
        assert waits[t1[1]] == pytest.approx(0.4)
        assert waits[t2[1]] == pytest.approx(0.0)

    def test_rejects_nonincreasing_entries(self):
        net = build_tandem_network(1.0, [1.0])
        paths = [TaskPath.from_queues([1])] * 2
        with pytest.raises(SimulationError):
            simulate_tasks(net, np.array([1.0, 1.0]), paths)

    def test_rejects_nonpositive_entries(self):
        net = build_tandem_network(1.0, [1.0])
        with pytest.raises(SimulationError):
            simulate_tasks(net, np.array([0.0]), [TaskPath.from_queues([1])])

    def test_rejects_path_count_mismatch(self):
        net = build_tandem_network(1.0, [1.0])
        with pytest.raises(SimulationError):
            simulate_tasks(net, np.array([1.0, 2.0]), [TaskPath.from_queues([1])])

    def test_rejects_empty_path(self):
        net = build_tandem_network(1.0, [1.0])
        with pytest.raises(SimulationError):
            simulate_tasks(net, np.array([1.0]), [TaskPath(states=(), queues=())])


class TestSimulateNetwork:
    def test_result_structure(self, tandem_sim):
        assert tandem_sim.n_tasks == 120
        assert len(tandem_sim.paths) == 120
        np.testing.assert_allclose(tandem_sim.true_rates(), [4.0, 6.0, 8.0])

    def test_trace_is_valid(self, three_tier_sim):
        three_tier_sim.events.validate()

    def test_reproducible(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        a = simulate_network(net, 30, random_state=42)
        b = simulate_network(net, 30, random_state=42)
        np.testing.assert_array_equal(a.events.departure, b.events.departure)

    def test_different_seeds_differ(self):
        net = build_tandem_network(4.0, [6.0, 8.0])
        a = simulate_network(net, 30, random_state=1)
        b = simulate_network(net, 30, random_state=2)
        assert not np.array_equal(a.events.departure, b.events.departure)

    def test_rejects_zero_tasks(self):
        net = build_tandem_network(4.0, [6.0])
        with pytest.raises(SimulationError):
            simulate_network(net, 0)

    def test_service_times_match_distribution(self, rng):
        """Realized service times at a queue are draws from its service dist."""
        net = build_tandem_network(2.0, [5.0])
        sim = simulate_network(net, 3000, random_state=rng)
        services = sim.events.service_times()
        members = sim.events.queue_order(1)
        assert services[members].mean() == pytest.approx(0.2, rel=0.05)
        # Exponential SCV = 1.
        scv = services[members].var() / services[members].mean() ** 2
        assert scv == pytest.approx(1.0, rel=0.15)

    def test_overloaded_queue_builds_backlog(self):
        net = build_three_tier_network(10.0, (1, 2, 4))
        sim = simulate_network(net, 400, random_state=3)
        waits = sim.events.mean_waiting_by_queue()
        # The single-server tier (rho = 2) must dominate waiting.
        assert waits[1] > 5.0 * np.nanmax(waits[2:])

    def test_interarrival_rate_matches_lambda(self):
        net = build_tandem_network(7.0, [100.0])
        sim = simulate_network(net, 4000, random_state=9)
        # Queue-0 "services" are the interarrival gaps.
        services = sim.events.service_times()
        members = sim.events.queue_order(0)
        assert 1.0 / services[members].mean() == pytest.approx(7.0, rel=0.05)
