"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulate import (
    DeterministicArrivals,
    LinearRampArrivals,
    MMPPArrivals,
    PoissonArrivals,
)


class TestPoisson:
    def test_strictly_increasing(self, rng):
        times = PoissonArrivals(rate=5.0).sample(500, rng)
        assert np.all(np.diff(times) > 0.0)
        assert times[0] > 0.0

    def test_rate_recovered(self, rng):
        times = PoissonArrivals(rate=8.0).sample(20000, rng)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert 1.0 / gaps.mean() == pytest.approx(8.0, rel=0.03)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=0.0)

    def test_rejects_zero_tasks(self, rng):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=1.0).sample(0, rng)


class TestLinearRamp:
    def test_within_horizon_and_sorted(self, rng):
        ramp = LinearRampArrivals(duration=100.0, rate0=0.0, slope=1.0)
        times = ramp.sample(1000, rng)
        assert np.all(np.diff(times) > 0.0)
        assert times[0] >= 0.0
        assert times[-1] <= 100.0

    def test_density_increases_linearly(self, rng):
        ramp = LinearRampArrivals(duration=10.0, rate0=0.0, slope=1.0)
        times = ramp.sample(40000, rng)
        # With rate ∝ t, P(T <= t) = (t / 10)^2: median at 10/sqrt(2).
        assert np.median(times) == pytest.approx(10.0 / np.sqrt(2.0), rel=0.02)
        first_half = np.count_nonzero(times < 5.0)
        assert first_half / times.size == pytest.approx(0.25, abs=0.01)

    def test_constant_rate_special_case(self, rng):
        ramp = LinearRampArrivals(duration=10.0, rate0=2.0, slope=0.0)
        times = ramp.sample(20000, rng)
        assert np.mean(times) == pytest.approx(5.0, rel=0.03)

    def test_rejects_zero_rates(self):
        with pytest.raises(ConfigurationError):
            LinearRampArrivals(duration=10.0, rate0=0.0, slope=0.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            LinearRampArrivals(duration=-1.0)


class TestDeterministic:
    def test_even_spacing(self, rng):
        times = DeterministicArrivals(rate=4.0).sample(8, rng)
        np.testing.assert_allclose(np.diff(times), 0.25)
        assert times[0] == pytest.approx(0.25)


class TestMMPP:
    def test_sorted_and_positive(self, rng):
        mmpp = MMPPArrivals(rates=(1.0, 20.0), switch_rates=(0.5, 0.5))
        times = mmpp.sample(500, rng)
        assert np.all(np.diff(times) > 0.0)
        assert times[0] > 0.0

    def test_burstier_than_poisson(self, rng):
        mmpp = MMPPArrivals(rates=(0.5, 50.0), switch_rates=(0.2, 0.2))
        times = mmpp.sample(5000, rng)
        gaps = np.diff(times)
        scv = gaps.var() / gaps.mean() ** 2
        assert scv > 1.5  # Poisson would give ~1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(rates=(1.0,), switch_rates=(1.0,))
        with pytest.raises(ConfigurationError):
            MMPPArrivals(rates=(1.0, -2.0), switch_rates=(1.0, 1.0))
