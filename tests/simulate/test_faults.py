"""Tests for fault-injected simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.network import build_tandem_network
from repro.simulate import RateChange, simulate_with_faults


class TestRateChange:
    def test_validation(self):
        with pytest.raises(SimulationError):
            RateChange(queue=1, at=-1.0, rate=2.0)
        with pytest.raises(SimulationError):
            RateChange(queue=1, at=0.0, rate=0.0)


class TestSimulateWithFaults:
    def test_no_faults_matches_plain_shape(self):
        net = build_tandem_network(4.0, [8.0])
        sim = simulate_with_faults(net, 100, faults=[], random_state=0)
        sim.events.validate()
        assert sim.events.n_tasks == 100

    def test_rate_change_visible(self):
        net = build_tandem_network(4.0, [8.0])
        fault_time = 50.0
        sim = simulate_with_faults(
            net, 800, faults=[RateChange(queue=1, at=fault_time, rate=2.0)],
            random_state=1,
        )
        ev = sim.events
        services = ev.service_times()
        begins = ev.begin_times()
        members = ev.queue_order(1)
        before = services[members][begins[members] < fault_time]
        after = services[members][begins[members] >= fault_time]
        assert before.size > 50 and after.size > 50
        assert after.mean() > 2.5 * before.mean()

    def test_multiple_changes_apply_in_order(self):
        net = build_tandem_network(2.0, [8.0])
        sim = simulate_with_faults(
            net, 600,
            faults=[
                RateChange(queue=1, at=100.0, rate=2.0),
                RateChange(queue=1, at=200.0, rate=16.0),
            ],
            random_state=2,
        )
        ev = sim.events
        services = ev.service_times()
        begins = ev.begin_times()
        members = ev.queue_order(1)
        late = services[members][begins[members] > 210.0]
        mid = services[members][(begins[members] > 110.0) & (begins[members] < 190.0)]
        assert late.size > 20 and mid.size > 20
        assert late.mean() < mid.mean() / 3.0

    def test_unknown_queue_rejected(self):
        net = build_tandem_network(2.0, [8.0])
        with pytest.raises(SimulationError):
            simulate_with_faults(
                net, 10, faults=[RateChange(queue=5, at=0.0, rate=1.0)]
            )

    def test_trace_always_valid(self):
        net = build_tandem_network(4.0, [8.0, 6.0])
        sim = simulate_with_faults(
            net, 200, faults=[RateChange(queue=2, at=10.0, rate=1.0)],
            random_state=3,
        )
        sim.events.validate()
