"""Tests for Jackson-network analysis and Little's law checks."""

import numpy as np
import pytest

from repro.network import build_tandem_network, build_three_tier_network
from repro.queueing_theory import analyze_jackson, littles_law_check, mm1_metrics
from repro.simulate import simulate_network


class TestJackson:
    def test_tandem_matches_mm1_per_queue(self):
        net = build_tandem_network(2.0, [5.0, 4.0])
        analysis = analyze_jackson(net)
        assert analysis.stable
        np.testing.assert_allclose(analysis.arrival_rates, [2.0, 2.0, 2.0])
        for q, mu in ((1, 5.0), (2, 4.0)):
            expected = mm1_metrics(2.0, mu)
            assert analysis.per_queue[q].mean_waiting == pytest.approx(
                expected.mean_waiting
            )
        expected_response = mm1_metrics(2.0, 5.0).mean_response + mm1_metrics(
            2.0, 4.0
        ).mean_response
        assert analysis.mean_response == pytest.approx(expected_response)

    def test_three_tier_split_rates(self):
        net = build_three_tier_network(8.0, (2, 2, 4), service_rate=5.0)
        analysis = analyze_jackson(net)
        assert analysis.arrival_rates[1] == pytest.approx(4.0)  # tier of 2
        assert analysis.arrival_rates[5] == pytest.approx(2.0)  # tier of 4

    def test_overloaded_network_not_stable(self):
        net = build_three_tier_network(10.0, (1, 2, 4))
        analysis = analyze_jackson(net)
        assert not analysis.stable
        assert analysis.mean_response == float("inf")
        assert analysis.per_queue[1] is None  # the rho = 2 queue
        assert analysis.per_queue[4] is not None  # a rho = 0.5 queue

    def test_bottleneck_is_highest_utilization(self):
        net = build_three_tier_network(8.0, (1, 2, 4), service_rate=10.0)
        analysis = analyze_jackson(net)
        assert analysis.bottleneck() == 1

    def test_simulation_agreement_stable_network(self):
        net = build_three_tier_network(4.0, (2, 2, 2), service_rate=5.0)
        sim = simulate_network(net, 20000, random_state=9)
        analysis = analyze_jackson(net)
        measured = sim.events.mean_waiting_by_queue()
        for q in range(1, net.n_queues):
            assert measured[q] == pytest.approx(
                analysis.per_queue[q].mean_waiting, rel=0.2, abs=0.01
            )


class TestLittlesLaw:
    def test_holds_on_long_simulation(self):
        net = build_tandem_network(3.0, [5.0])
        sim = simulate_network(net, 20000, random_state=31)
        report = littles_law_check(sim.events, queue=1)
        assert report.relative_gap < 0.02

    def test_holds_per_queue_in_network(self, three_tier_sim):
        for q in range(1, three_tier_sim.events.n_queues):
            report = littles_law_check(three_tier_sim.events, queue=q)
            assert report.relative_gap < 0.5  # short trace, loose bound

    def test_validation(self, tandem_sim):
        with pytest.raises(ValueError):
            littles_law_check(tandem_sim.events, queue=1, trim=0.7)
