"""Tests for M/M/1 and M/M/c steady-state formulas."""

import numpy as np
import pytest

from repro.errors import NotStableError
from repro.queueing_theory import erlang_c, mm1_metrics, mmc_metrics, pooling_gain


class TestMM1:
    def test_textbook_case(self):
        m = mm1_metrics(arrival_rate=2.0, service_rate=5.0)
        assert m.utilization == pytest.approx(0.4)
        assert m.mean_response == pytest.approx(1.0 / 3.0)
        assert m.mean_waiting == pytest.approx(0.4 / 3.0)
        assert m.mean_number_in_system == pytest.approx(0.4 / 0.6)
        assert m.mean_queue_length == pytest.approx(0.16 / 0.6)

    def test_littles_law_consistency(self):
        m = mm1_metrics(3.0, 7.0)
        assert m.mean_number_in_system == pytest.approx(3.0 * m.mean_response)
        assert m.mean_queue_length == pytest.approx(3.0 * m.mean_waiting)

    def test_overload_raises(self):
        with pytest.raises(NotStableError):
            mm1_metrics(10.0, 5.0)
        with pytest.raises(NotStableError):
            mm1_metrics(5.0, 5.0)

    def test_response_quantile(self):
        m = mm1_metrics(2.0, 5.0)
        # Sojourn is Exp(mu - lambda): median = ln 2 / 3.
        assert m.response_quantile(0.5) == pytest.approx(np.log(2.0) / 3.0)

    def test_prob_n_geometric(self):
        m = mm1_metrics(2.0, 5.0)
        total = sum(m.prob_n_in_system(n) for n in range(200))
        assert total == pytest.approx(1.0)
        assert m.prob_n_in_system(0) == pytest.approx(0.6)

    def test_simulation_agreement(self):
        """The simulator's mean waiting must match the analytic M/M/1."""
        from repro.network import build_tandem_network
        from repro.simulate import simulate_network

        net = build_tandem_network(3.0, [5.0])
        sim = simulate_network(net, 20000, random_state=123)
        m = mm1_metrics(3.0, 5.0)
        measured = sim.events.mean_waiting_by_queue()[1]
        assert measured == pytest.approx(m.mean_waiting, rel=0.1)


class TestErlangC:
    def test_single_server_reduces_to_mm1(self):
        # For c=1, P(wait) = rho.
        assert erlang_c(2.0, 5.0, 1) == pytest.approx(0.4)

    def test_known_value(self):
        # a = 2 Erlang, c = 3: Erlang-B recurrence gives B = 4/19 and
        # C = B / (1 - rho (1 - B)) = 4/9.
        c = erlang_c(2.0, 1.0, 3)
        assert c == pytest.approx(4.0 / 9.0, abs=1e-9)

    def test_more_servers_less_waiting(self):
        waits = [mmc_metrics(4.0, 1.0, c).mean_waiting for c in (5, 6, 8)]
        assert waits[0] > waits[1] > waits[2]

    def test_overload_raises(self):
        with pytest.raises(NotStableError):
            erlang_c(10.0, 1.0, 9)

    def test_mmc_metrics_consistency(self):
        m = mmc_metrics(4.0, 1.0, 6)
        assert m.mean_response == pytest.approx(m.mean_waiting + 1.0)
        assert m.mean_queue_length == pytest.approx(4.0 * m.mean_waiting)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            erlang_c(-1.0, 1.0, 2)


class TestPoolingGain:
    def test_pooling_always_helps(self):
        gain = pooling_gain(arrival_rate=4.0, service_rate=1.5, c=4)
        assert gain > 1.0

    def test_gain_grows_with_servers(self):
        g2 = pooling_gain(2.0, 1.5, 2)
        g8 = pooling_gain(8.0, 1.5, 8)
        assert g8 > g2

    def test_unstable_configuration(self):
        with pytest.raises(NotStableError):
            pooling_gain(10.0, 1.0, 5)
