"""Hypothesis property tests for task-subset round-trips.

The sharded sweep engine rests on two structural facts this suite pins
over randomized traces and partitions:

* ``subset_tasks`` over *any* disjoint task partition loses nothing —
  :func:`~repro.events.subset.merge_task_subsets` recombines the blocks
  into the original event set exactly (event counts, every column, and
  each queue's frozen ordering), including after structural mutation
  (``structure_version`` semantics: subsets snapshot the *current*
  order and start their own version counter at 0);
* boundary-event sets are symmetric across every shard cut — an event
  faces shard ``b`` exactly when one of its queue neighbors faces back.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.events import EventSet, merge_task_subsets, subset_tasks
from repro.inference.shard import boundary_event_sets, partition_tasks
from repro.network import build_tandem_network
from repro.simulate import simulate_network


def _simulated_events(n_tasks: int, n_stations: int, seed: int) -> EventSet:
    net = build_tandem_network(4.0, [6.0 + i for i in range(n_stations)])
    return simulate_network(net, n_tasks, random_state=seed).events


def _partition_blocks(events: EventSet, labels: list[int]) -> list[list[int]]:
    """Group task ids by hypothesis-drawn labels; drop empty blocks."""
    task_ids = events.task_ids
    blocks: dict[int, list[int]] = {}
    for task, label in zip(task_ids, labels):
        blocks.setdefault(label, []).append(task)
    return list(blocks.values())


trace_strategy = st.tuples(
    st.integers(min_value=3, max_value=14),   # tasks
    st.integers(min_value=2, max_value=3),    # tandem stations
    st.integers(min_value=0, max_value=10_000),  # simulator seed
)


@st.composite
def trace_and_labels(draw):
    n_tasks, n_stations, seed = draw(trace_strategy)
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=n_tasks,
            max_size=n_tasks,
        )
    )
    return n_tasks, n_stations, seed, labels


def assert_event_sets_equal(a: EventSet, b: EventSet) -> None:
    np.testing.assert_array_equal(a.task, b.task)
    np.testing.assert_array_equal(a.seq, b.seq)
    np.testing.assert_array_equal(a.queue, b.queue)
    np.testing.assert_array_equal(a.arrival, b.arrival)
    np.testing.assert_array_equal(a.departure, b.departure)
    np.testing.assert_array_equal(a.state, b.state)
    assert a.n_queues == b.n_queues
    for q in range(a.n_queues):
        np.testing.assert_array_equal(a.queue_order(q), b.queue_order(q))


class TestPartitionRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(trace_and_labels())
    def test_merge_recombines_exactly(self, drawn):
        n_tasks, n_stations, seed, labels = drawn
        events = _simulated_events(n_tasks, n_stations, seed)
        parts = [
            subset_tasks(events, block)
            for block in _partition_blocks(events, labels)
        ]
        merged = merge_task_subsets(parts)
        assert merged.n_events == events.n_events
        assert_event_sets_equal(events, merged)
        merged.validate()

    @settings(max_examples=25, deadline=None)
    @given(trace_strategy)
    def test_subset_preserves_per_queue_order_restriction(self, drawn):
        n_tasks, n_stations, seed = drawn
        events = _simulated_events(n_tasks, n_stations, seed)
        chosen = set(events.task_ids[::2])
        subset, kept = subset_tasks(events, chosen)
        for q in range(events.n_queues):
            original = [
                int(e)
                for e in events.queue_order(q)
                if int(events.task[e]) in chosen
            ]
            mapped = [int(kept[i]) for i in subset.queue_order(q)]
            assert original == mapped

    @settings(max_examples=15, deadline=None)
    @given(trace_strategy)
    def test_structure_version_semantics(self, drawn):
        """Subsets snapshot the current structure at version 0, and mutating
        a subset never touches the original (and vice versa)."""
        n_tasks, n_stations, seed = drawn
        events = _simulated_events(n_tasks, n_stations, seed)
        # Mutate the original's structure first (a path-MH style move).
        movable = [
            int(e)
            for e in range(events.n_events)
            if events.seq[e] != 0 and events.n_queues > 2
        ]
        if movable and events.n_queues > 2:
            e = movable[0]
            target = 1 + (int(events.queue[e])) % (events.n_queues - 1)
            if target != int(events.queue[e]):
                events.reassign_queue(e, target)
                assert events.structure_version == 1
        subset, kept = subset_tasks(events, events.task_ids)
        assert subset.structure_version == 0
        # The subset reflects the post-mutation queue memberships ...
        np.testing.assert_array_equal(subset.queue[np.argsort(kept)],
                                      events.queue[np.sort(kept)])
        # ... and shares no mutable state with the original.
        before = events.arrival.copy()
        subset.arrival[:] = -1.0
        np.testing.assert_array_equal(events.arrival, before)


class TestBoundarySymmetry:
    @settings(max_examples=30, deadline=None)
    @given(trace_and_labels())
    def test_boundary_sets_symmetric_across_every_cut(self, drawn):
        n_tasks, n_stations, seed, labels = drawn
        events = _simulated_events(n_tasks, n_stations, seed)
        n_shards = min(1 + max(labels), n_tasks) if labels else 1
        partition = partition_tasks(events, n_shards)
        sets = boundary_event_sets(events, partition)
        sv = partition.event_shards(events)
        for (a, b), members in sets.items():
            assert (b, a) in sets, f"cut ({a}, {b}) has no mirror"
            mirror = set(sets[(b, a)].tolist())
            for e in map(int, members):
                assert int(sv[e]) == a
                neighbors = {int(events.rho[e]), int(events.rho_inv[e])}
                neighbors.discard(-1)
                assert neighbors & mirror, (
                    f"event {e} in ({a}, {b}) has no neighbor in ({b}, {a})"
                )

    @settings(max_examples=20, deadline=None)
    @given(trace_strategy, st.integers(min_value=1, max_value=5))
    def test_cut_size_bounds_boundary_pairs(self, drawn, n_shards):
        n_tasks, n_stations, seed = drawn
        events = _simulated_events(n_tasks, n_stations, seed)
        partition = partition_tasks(events, n_shards)
        sets = boundary_event_sets(events, partition)
        n_cross_events = sum(v.size for v in sets.values())
        if partition.cut_size == 0:
            assert n_cross_events == 0
        else:
            # Each cross-shard adjacent event pair contributes exactly two
            # directed memberships, deduplicated per (event, cut) cell.
            assert 0 < n_cross_events <= 2 * partition.cut_size
