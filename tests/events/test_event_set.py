"""Tests for the EventSet data structure."""

import numpy as np
import pytest

from repro.errors import InvalidEventSetError
from repro.events import EventSet


def two_task_tandem() -> EventSet:
    """Two tasks through queues 1 -> 2, hand-constructed times.

    Task 0: enters 1.0, q1 service 0.5 -> departs 1.5, q2 service 0.3 -> 1.8
    Task 1: enters 1.2, q1 waits until 1.5, service 0.4 -> 1.9, q2 0.2 -> 2.1
    """
    return EventSet.from_task_paths(
        entries=[1.0, 1.2],
        paths=[[1, 2], [1, 2]],
        arrivals=[[1.0, 1.5], [1.2, 1.9]],
        departures=[[1.5, 1.8], [1.9, 2.1]],
        n_queues=3,
    )


class TestConstruction:
    def test_counts(self):
        ev = two_task_tandem()
        assert ev.n_events == 6
        assert ev.n_tasks == 2
        assert ev.n_queues == 3
        np.testing.assert_array_equal(ev.events_per_queue(), [2, 2, 2])

    def test_pointers(self):
        ev = two_task_tandem()
        t0 = ev.events_of_task(0)
        t1 = ev.events_of_task(1)
        # Within-task chains.
        assert ev.pi[t0[0]] == -1
        assert ev.pi[t0[1]] == t0[0]
        assert ev.pi_inv[t0[1]] == t0[2]
        # Within-queue order at q1: task 0 then task 1.
        q1 = ev.queue_order(1)
        assert list(ev.task[q1]) == [0, 1]
        assert ev.rho[q1[1]] == q1[0]
        assert ev.rho_inv[q1[0]] == q1[1]
        assert ev.rho[q1[0]] == -1

    def test_initial_events(self):
        ev = two_task_tandem()
        for task_id in (0, 1):
            first = ev.events_of_task(task_id)[0]
            assert ev.is_initial(first)
            assert ev.queue[first] == 0
            assert ev.arrival[first] == 0.0

    def test_from_arrays_equivalent(self):
        ev = two_task_tandem()
        ev2 = EventSet.from_arrays(
            task=ev.task, seq=ev.seq, queue=ev.queue,
            arrival=ev.arrival, departure=ev.departure, n_queues=3,
        )
        np.testing.assert_array_equal(ev.rho, ev2.rho)
        np.testing.assert_array_equal(ev.pi, ev2.pi)

    def test_rejects_gap_in_seq(self):
        with pytest.raises(InvalidEventSetError):
            EventSet.from_arrays(
                task=[0, 0], seq=[0, 2], queue=[0, 1],
                arrival=[0.0, 1.0], departure=[1.0, 2.0], n_queues=2,
            )

    def test_rejects_non_initial_queue_zero(self):
        with pytest.raises(InvalidEventSetError):
            EventSet.from_arrays(
                task=[0, 0], seq=[0, 1], queue=[0, 0],
                arrival=[0.0, 1.0], departure=[1.0, 2.0], n_queues=2,
            )

    def test_rejects_initial_not_at_queue_zero(self):
        with pytest.raises(InvalidEventSetError):
            EventSet.from_arrays(
                task=[0, 0], seq=[0, 1], queue=[1, 1],
                arrival=[0.0, 1.0], departure=[1.0, 2.0], n_queues=2,
            )

    def test_rejects_empty(self):
        with pytest.raises(InvalidEventSetError):
            EventSet.from_arrays(
                task=[], seq=[], queue=[], arrival=[], departure=[], n_queues=2
            )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidEventSetError):
            EventSet.from_task_paths(
                entries=[1.0], paths=[[1, 2]], arrivals=[[1.0]],
                departures=[[1.5, 1.8]], n_queues=3,
            )


class TestDerivedTimes:
    def test_service_times(self):
        ev = two_task_tandem()
        services = ev.service_times()
        t1 = ev.events_of_task(1)
        # Task 1 at q1: begin = max(1.2, 1.5) = 1.5, service 0.4.
        assert services[t1[1]] == pytest.approx(0.4)
        # Interarrival services at q0: 1.0 and 0.2.
        t0 = ev.events_of_task(0)
        assert services[t0[0]] == pytest.approx(1.0)
        assert services[t1[0]] == pytest.approx(0.2)

    def test_waiting_times(self):
        ev = two_task_tandem()
        waits = ev.waiting_times()
        t1 = ev.events_of_task(1)
        assert waits[t1[1]] == pytest.approx(0.3)  # 1.5 - 1.2
        t0 = ev.events_of_task(0)
        assert waits[t0[1]] == pytest.approx(0.0)

    def test_response_decomposition(self):
        ev = two_task_tandem()
        np.testing.assert_allclose(
            ev.response_times(), ev.service_times() + ev.waiting_times()
        )

    def test_task_response_times(self):
        ev = two_task_tandem()
        responses = ev.task_response_times()
        assert responses[0] == pytest.approx(0.8)  # 1.8 - 1.0
        assert responses[1] == pytest.approx(0.9)  # 2.1 - 1.2

    def test_scalar_fast_path_matches_vector(self):
        ev = two_task_tandem()
        services = ev.service_times()
        for e in range(ev.n_events):
            assert ev.service_time_of(e) == pytest.approx(services[e])

    def test_per_queue_means(self):
        ev = two_task_tandem()
        mean_service = ev.mean_service_by_queue()
        assert mean_service[1] == pytest.approx((0.5 + 0.4) / 2)
        assert mean_service[2] == pytest.approx((0.3 + 0.2) / 2)


class TestMutation:
    def test_set_arrival_keeps_identity(self):
        ev = two_task_tandem()
        t1 = ev.events_of_task(1)
        ev.set_arrival(int(t1[1]), 1.3)
        assert ev.arrival[t1[1]] == 1.3
        assert ev.departure[t1[0]] == 1.3  # predecessor departure moved too
        ev.validate()

    def test_set_arrival_rejects_initial(self):
        ev = two_task_tandem()
        first = ev.events_of_task(0)[0]
        with pytest.raises(InvalidEventSetError):
            ev.set_arrival(int(first), 0.5)

    def test_set_final_departure(self):
        ev = two_task_tandem()
        last = ev.events_of_task(1)[-1]
        ev.set_final_departure(int(last), 2.4)
        assert ev.departure[last] == 2.4
        ev.validate()

    def test_set_final_departure_rejects_inner(self):
        ev = two_task_tandem()
        inner = ev.events_of_task(1)[1]
        with pytest.raises(InvalidEventSetError):
            ev.set_final_departure(int(inner), 5.0)

    def test_copy_is_independent(self):
        ev = two_task_tandem()
        clone = ev.copy()
        t1 = ev.events_of_task(1)
        clone.set_arrival(int(t1[1]), 1.4)
        assert ev.arrival[t1[1]] == 1.2


class TestValidation:
    def test_valid_trace_passes(self):
        two_task_tandem().validate()

    def test_detects_negative_service(self):
        ev = two_task_tandem()
        last = ev.events_of_task(1)[-1]
        ev.departure[last] = 1.0  # before its begin time
        assert not ev.is_valid()

    def test_detects_broken_identity(self):
        ev = two_task_tandem()
        t1 = ev.events_of_task(1)
        ev.arrival[t1[1]] = 0.9  # no longer equals predecessor departure
        assert not ev.is_valid()

    def test_detects_initial_arrival_shift(self):
        ev = two_task_tandem()
        first = ev.events_of_task(0)[0]
        ev.arrival[first] = 0.1
        assert not ev.is_valid()

    def test_detects_fifo_violation(self):
        ev = two_task_tandem()
        q1 = ev.queue_order(1)
        # Make the first q1 event depart after the second (FIFO violation)
        # while keeping its own task chain consistent would be complex; just
        # perturb the raw array and check detection.
        ev.departure[q1[0]] = 3.0
        assert not ev.is_valid()


class TestLogJoint:
    def test_finite_for_valid_trace(self):
        ev = two_task_tandem()
        lj = ev.log_joint(np.array([1.0, 2.0, 3.0]))
        assert np.isfinite(lj)

    def test_matches_manual_computation(self):
        ev = two_task_tandem()
        rates = np.array([1.0, 2.0, 3.0])
        services = ev.service_times()
        expected = sum(
            np.log(rates[ev.queue[e]]) - rates[ev.queue[e]] * services[e]
            for e in range(ev.n_events)
        )
        assert ev.log_joint(rates) == pytest.approx(expected)

    def test_minus_inf_when_infeasible(self):
        ev = two_task_tandem()
        last = ev.events_of_task(1)[-1]
        ev.departure[last] = 0.5
        assert ev.log_joint(np.array([1.0, 2.0, 3.0])) == -np.inf

    def test_rejects_wrong_shape(self):
        ev = two_task_tandem()
        with pytest.raises(InvalidEventSetError):
            ev.log_joint(np.array([1.0, 2.0]))

    def test_total_service_by_queue_matches(self):
        ev = two_task_tandem()
        totals = ev.total_service_by_queue()
        services = ev.service_times()
        for q in range(3):
            members = ev.queue_order(q)
            assert totals[q] == pytest.approx(services[members].sum())
