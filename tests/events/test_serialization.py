"""Tests for event-set serialization."""

import numpy as np
import pytest

from repro.errors import InvalidEventSetError
from repro.events import (
    event_set_from_records,
    event_set_to_records,
    load_jsonl,
    save_jsonl,
)
from tests.events.test_event_set import two_task_tandem


class TestRecords:
    def test_round_trip(self):
        ev = two_task_tandem()
        records = event_set_to_records(ev)
        assert len(records) == ev.n_events
        rebuilt = event_set_from_records(records, n_queues=ev.n_queues)
        rebuilt.validate()
        # Compare per-task times (row order may differ).
        for task_id in ev.task_ids:
            a = ev.arrival[ev.events_of_task(task_id)]
            b = rebuilt.arrival[rebuilt.events_of_task(task_id)]
            np.testing.assert_allclose(a, b)

    def test_shuffled_records_rebuild(self, rng):
        ev = two_task_tandem()
        records = event_set_to_records(ev)
        rng.shuffle(records)
        rebuilt = event_set_from_records(records, n_queues=ev.n_queues)
        rebuilt.validate()
        assert rebuilt.n_tasks == ev.n_tasks

    def test_empty_records_rejected(self):
        with pytest.raises(InvalidEventSetError):
            event_set_from_records([], n_queues=2)

    def test_missing_fields_rejected(self):
        with pytest.raises(InvalidEventSetError):
            event_set_from_records([{"task": 0}], n_queues=2)


class TestJsonl:
    def test_file_round_trip(self, tmp_path):
        ev = two_task_tandem()
        path = tmp_path / "trace.jsonl"
        save_jsonl(ev, path)
        loaded = load_jsonl(path)
        loaded.validate()
        assert loaded.n_events == ev.n_events
        assert loaded.n_queues == ev.n_queues
        np.testing.assert_allclose(
            sorted(loaded.departure), sorted(ev.departure)
        )

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(InvalidEventSetError):
            load_jsonl(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(InvalidEventSetError):
            load_jsonl(path)

    def test_simulated_trace_round_trip(self, tmp_path, tandem_sim):
        path = tmp_path / "sim.jsonl"
        save_jsonl(tandem_sim.events, path)
        loaded = load_jsonl(path)
        loaded.validate()
        np.testing.assert_allclose(
            loaded.mean_service_by_queue(), tandem_sim.events.mean_service_by_queue()
        )
