"""Tests for task-subset extraction."""

import numpy as np
import pytest

from repro.errors import InvalidEventSetError
from repro.events.subset import subset_tasks, subset_trace
from repro.observation import TaskSampling


class TestSubsetTasks:
    def test_preserves_times_and_structure(self, tandem_sim):
        ev = tandem_sim.events
        chosen = ev.task_ids[:10]
        subset, kept = subset_tasks(ev, chosen)
        assert subset.n_tasks == 10
        np.testing.assert_allclose(subset.arrival, ev.arrival[kept])
        subset.validate()

    def test_queue_order_is_restriction(self, tandem_sim):
        ev = tandem_sim.events
        chosen = set(ev.task_ids[::3])
        subset, kept = subset_tasks(ev, chosen)
        for q in range(ev.n_queues):
            original = [int(e) for e in ev.queue_order(q) if int(ev.task[e]) in chosen]
            mapped = [int(kept[i]) for i in subset.queue_order(q)]
            assert original == mapped

    def test_task_ids_preserved(self, tandem_sim):
        ev = tandem_sim.events
        chosen = [5, 17, 42]
        subset, _ = subset_tasks(ev, chosen)
        assert subset.task_ids == chosen

    def test_rejects_empty(self, tandem_sim):
        with pytest.raises(InvalidEventSetError):
            subset_tasks(tandem_sim.events, [])

    def test_rejects_unknown_task(self, tandem_sim):
        with pytest.raises(InvalidEventSetError):
            subset_tasks(tandem_sim.events, [10**9])

    def test_statistics_consistent(self, tandem_sim):
        ev = tandem_sim.events
        subset, kept = subset_tasks(ev, ev.task_ids)
        # Full subset == original.
        np.testing.assert_allclose(
            subset.mean_service_by_queue(), ev.mean_service_by_queue()
        )


class TestSubsetTrace:
    def test_masks_follow(self, tandem_sim):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        chosen = tandem_sim.events.task_ids[:20]
        sub = subset_trace(trace, chosen)
        assert sub.skeleton.n_tasks == 20
        # Observed fraction roughly preserved.
        assert 0.0 <= sub.observed_fraction() <= 1.0
        # Latent positions still nan.
        lat = sub.latent_arrival_events
        assert np.all(np.isnan(sub.skeleton.arrival[lat]))

    def test_subset_inferencable(self, tandem_sim):
        """A subset trace runs through the full inference stack."""
        from repro.inference import run_stem

        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=1)
        sub = subset_trace(trace, tandem_sim.events.task_ids[:60])
        stem = run_stem(sub, n_iterations=25, random_state=2, init_method="heuristic")
        assert np.all(np.isfinite(stem.rates))
