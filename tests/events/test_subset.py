"""Tests for task-subset extraction."""

import numpy as np
import pytest

from repro.errors import InvalidEventSetError
from repro.events.subset import subset_tasks, subset_trace
from repro.observation import TaskSampling


class TestSubsetTasks:
    def test_preserves_times_and_structure(self, tandem_sim):
        ev = tandem_sim.events
        chosen = ev.task_ids[:10]
        subset, kept = subset_tasks(ev, chosen)
        assert subset.n_tasks == 10
        np.testing.assert_allclose(subset.arrival, ev.arrival[kept])
        subset.validate()

    def test_queue_order_is_restriction(self, tandem_sim):
        ev = tandem_sim.events
        chosen = set(ev.task_ids[::3])
        subset, kept = subset_tasks(ev, chosen)
        for q in range(ev.n_queues):
            original = [int(e) for e in ev.queue_order(q) if int(ev.task[e]) in chosen]
            mapped = [int(kept[i]) for i in subset.queue_order(q)]
            assert original == mapped

    def test_task_ids_preserved(self, tandem_sim):
        ev = tandem_sim.events
        chosen = [5, 17, 42]
        subset, _ = subset_tasks(ev, chosen)
        assert subset.task_ids == chosen

    def test_rejects_empty(self, tandem_sim):
        with pytest.raises(InvalidEventSetError):
            subset_tasks(tandem_sim.events, [])

    def test_rejects_unknown_task(self, tandem_sim):
        with pytest.raises(InvalidEventSetError):
            subset_tasks(tandem_sim.events, [10**9])

    def test_statistics_consistent(self, tandem_sim):
        ev = tandem_sim.events
        subset, kept = subset_tasks(ev, ev.task_ids)
        # Full subset == original.
        np.testing.assert_allclose(
            subset.mean_service_by_queue(), ev.mean_service_by_queue()
        )


class TestMergeTaskSubsets:
    def test_round_trip_two_blocks(self, tandem_sim):
        from repro.events import merge_task_subsets

        ev = tandem_sim.events
        blocks = [ev.task_ids[::2], ev.task_ids[1::2]]
        merged = merge_task_subsets([subset_tasks(ev, b) for b in blocks])
        np.testing.assert_array_equal(merged.arrival, ev.arrival)
        np.testing.assert_array_equal(merged.task, ev.task)
        for q in range(ev.n_queues):
            np.testing.assert_array_equal(merged.queue_order(q), ev.queue_order(q))

    def test_unvisited_queue_merges_to_empty_order(self):
        """Regression: a queue no task ever visits must not crash the merge."""
        from repro.events import EventSet, merge_task_subsets

        ev = EventSet.from_task_paths(
            entries=[1.0, 1.5],
            paths=[[1], [1]],
            arrivals=[[1.0], [1.5]],
            departures=[[1.2], [1.9]],
            n_queues=3,  # queue 2 unused
        )
        parts = [subset_tasks(ev, [0]), subset_tasks(ev, [1])]
        merged = merge_task_subsets(parts)
        assert merged.queue_order(2).size == 0
        np.testing.assert_array_equal(merged.arrival, ev.arrival)
        merged.validate()

    def test_rejects_censored_subsets(self, tandem_sim):
        """Regression: nan times cannot reconstruct frozen orders — the
        merge must refuse rather than silently return wrong rho pointers."""
        from repro.events import merge_task_subsets

        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        skel = trace.skeleton
        blocks = [skel.task_ids[::2], skel.task_ids[1::2]]
        with pytest.raises(InvalidEventSetError, match="censored"):
            merge_task_subsets([subset_tasks(skel, b) for b in blocks])

    def test_rejects_non_partition(self, tandem_sim):
        from repro.events import merge_task_subsets

        ev = tandem_sim.events
        with pytest.raises(InvalidEventSetError):
            # A gap: task 0's events (indices 0..k) are missing.
            merge_task_subsets([subset_tasks(ev, ev.task_ids[5:10])])
        with pytest.raises(InvalidEventSetError):
            # An overlap: the same block twice.
            half = ev.task_ids[: ev.n_tasks // 2]
            merge_task_subsets([subset_tasks(ev, half), subset_tasks(ev, half)])
        with pytest.raises(InvalidEventSetError):
            merge_task_subsets([])


class TestSubsetTrace:
    def test_masks_follow(self, tandem_sim):
        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        chosen = tandem_sim.events.task_ids[:20]
        sub = subset_trace(trace, chosen)
        assert sub.skeleton.n_tasks == 20
        # Observed fraction roughly preserved.
        assert 0.0 <= sub.observed_fraction() <= 1.0
        # Latent positions still nan.
        lat = sub.latent_arrival_events
        assert np.all(np.isnan(sub.skeleton.arrival[lat]))

    def test_subset_inferencable(self, tandem_sim):
        """A subset trace runs through the full inference stack."""
        from repro.inference import run_stem

        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=1)
        sub = subset_trace(trace, tandem_sim.events.task_ids[:60])
        stem = run_stem(sub, n_iterations=25, random_state=2, init_method="heuristic")
        assert np.all(np.isfinite(stem.rates))


class TestSubsetIndex:
    """The O(window) repeated-subsetting fast path of the online estimators."""

    def test_bitwise_identical_to_subset_tasks(self, tandem_sim):
        from repro.events.subset import SubsetIndex

        ev = tandem_sim.events
        index = SubsetIndex(ev)
        rng = np.random.default_rng(3)
        for _ in range(5):
            size = int(rng.integers(1, ev.n_tasks))
            chosen = rng.choice(ev.task_ids, size=size, replace=False).tolist()
            fast, kept_fast = index.subset_tasks(chosen)
            slow, kept_slow = subset_tasks(ev, chosen)
            np.testing.assert_array_equal(kept_fast, kept_slow)
            for name in ("task", "seq", "queue", "arrival", "departure",
                         "state", "rho", "rho_inv", "pi", "pi_inv"):
                np.testing.assert_array_equal(
                    getattr(fast, name), getattr(slow, name), err_msg=name
                )
            for q in range(ev.n_queues):
                np.testing.assert_array_equal(
                    fast.queue_order(q), slow.queue_order(q)
                )

    def test_indexed_subset_trace_matches(self, tandem_sim):
        from repro.events.subset import SubsetIndex

        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        index = SubsetIndex(trace.skeleton)
        chosen = tandem_sim.events.task_ids[10:40]
        fast = subset_trace(trace, chosen, index=index)
        slow = subset_trace(trace, chosen)
        np.testing.assert_array_equal(fast.arrival_observed, slow.arrival_observed)
        np.testing.assert_array_equal(fast.departure_observed, slow.departure_observed)
        np.testing.assert_array_equal(fast.skeleton.arrival, slow.skeleton.arrival)

    def test_rejects_empty(self, tandem_sim):
        from repro.events.subset import SubsetIndex

        with pytest.raises(InvalidEventSetError):
            SubsetIndex(tandem_sim.events).subset_tasks([])

    def test_rejects_structurally_mutated_event_set(self, tandem_sim):
        """A path-MH queue reassignment invalidates the cached positions;
        the index must refuse rather than return a silently wrong order."""
        from repro.events.subset import SubsetIndex

        ev = tandem_sim.events.copy()
        index = SubsetIndex(ev)
        movable = int(np.flatnonzero(ev.seq == 1)[0])
        target = 2 if ev.queue[movable] != 2 else 1
        ev.reassign_queue(movable, target)
        with pytest.raises(InvalidEventSetError, match="stale"):
            index.subset_tasks(ev.task_ids[:5])

    def test_subset_trace_rejects_foreign_index(self, tandem_sim, three_tier_sim):
        from repro.events.subset import SubsetIndex

        trace = TaskSampling(fraction=0.3).observe(tandem_sim.events, random_state=0)
        foreign = SubsetIndex(three_tier_sim.events)
        with pytest.raises(InvalidEventSetError, match="different event set"):
            subset_trace(trace, tandem_sim.events.task_ids[:5], index=foreign)
