"""Property-based tests: simulator output is always a valid event set."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventSet, event_set_from_records, event_set_to_records
from repro.network import build_tandem_network, build_three_tier_network
from repro.simulate import simulate_network


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=1, max_value=40),
    arrival_rate=st.floats(min_value=0.5, max_value=20.0),
    service_rate=st.floats(min_value=0.5, max_value=20.0),
)
@settings(max_examples=30, deadline=None)
def test_simulated_tandem_always_valid(seed, n_tasks, arrival_rate, service_rate):
    net = build_tandem_network(arrival_rate, [service_rate, service_rate * 2.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    sim.events.validate()
    assert sim.events.n_tasks == n_tasks
    assert np.all(sim.events.service_times() >= 0.0)
    assert np.all(sim.events.waiting_times() >= 0.0)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    servers=st.tuples(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
    ),
)
@settings(max_examples=20, deadline=None)
def test_simulated_three_tier_always_valid(seed, servers):
    net = build_three_tier_network(8.0, servers)
    sim = simulate_network(net, 25, random_state=seed)
    sim.events.validate()
    # Exactly 3 real visits + 1 initial event per task.
    assert sim.events.n_events == 25 * 4


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_serialization_round_trip_preserves_validity(seed):
    net = build_tandem_network(3.0, [5.0, 5.0])
    sim = simulate_network(net, 15, random_state=seed)
    records = event_set_to_records(sim.events)
    rebuilt = event_set_from_records(records, n_queues=sim.events.n_queues)
    rebuilt.validate()
    assert rebuilt.log_joint(sim.true_rates()) == sim.events.log_joint(sim.true_rates())


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    move_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_arrival_moves_within_bounds_stay_valid(seed, move_seed):
    """Any arrival placed inside its (L, U) interval keeps the set valid."""
    from repro.inference.conditional import arrival_neighborhood

    net = build_tandem_network(4.0, [5.0, 6.0])
    sim = simulate_network(net, 20, random_state=seed)
    ev = sim.events
    rates = sim.true_rates()
    rng = np.random.default_rng(move_seed)
    movable = [e for e in range(ev.n_events) if ev.pi[e] >= 0]
    for e in rng.choice(movable, size=min(10, len(movable)), replace=False):
        nb = arrival_neighborhood(ev, int(e), rates)
        lo, hi = nb.lower, nb.upper
        if hi - lo <= 0.0:
            continue
        new = rng.uniform(lo, hi)
        ev.set_arrival(int(e), new)
        ev.validate()
