"""The TraceStream conformance suite.

PR 4 defined the :class:`~repro.online.streaming.TraceStream` contract
informally (the replay source "defines the semantics").  This suite pins
it as tests, parametrized over every implementation — currently
:class:`~repro.online.streaming.ReplayTraceStream` and
:class:`~repro.live.stream.LiveTraceStream` — so a future source cannot
drift from what the streaming estimator assumes:

* **poll monotonicity** — reveals are in non-decreasing entry order,
  strictly below the requested bound, never repeated, and the reveal
  sequence is independent of how the polls are chopped;
* **horizon semantics** — the horizon is the largest revealed-able entry
  estimate, and the full reveal set is exactly the task universe;
* **subset stability** — subsetting revealed tasks is deterministic,
  bitwise equal to :func:`~repro.events.subset.subset_trace` over the
  stream's backing trace, and stable under repetition;
* **assembly equivalence** — a live stream's incrementally assembled
  trace is bitwise the sort-based :func:`~repro.live.records.
  assemble_trace` rebuild of its retained record log, under every
  ingestion pattern and across prefix compaction (the oracle for the
  O(task) fast path).
"""

import numpy as np
import pytest

from repro.events.subset import subset_trace
from repro.live import (
    LiveTraceStream,
    assemble_trace,
    replay_batches,
    trace_to_records,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import ReplayTraceStream
from repro.simulate import simulate_network

STREAM_KINDS = ("replay", "live")


@pytest.fixture(scope="module")
def recorded():
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks=180, random_state=9)
    trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=2)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def make_stream(kind, trace):
    if kind == "replay":
        return ReplayTraceStream(trace)
    stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
    stream.ingest(trace_to_records(trace))
    stream.seal()
    return stream


@pytest.mark.parametrize("kind", STREAM_KINDS)
class TestPollMonotonicity:
    def test_reveals_are_ordered_bounded_and_unrepeated(self, kind, recorded):
        trace, horizon = recorded
        stream = make_stream(kind, trace)
        assert stream.n_revealed == 0
        first = stream.poll(horizon / 4)
        entries = [entry for _, entry in first]
        assert entries == sorted(entries)
        assert all(entry < horizon / 4 for entry in entries)
        assert stream.poll(horizon / 4) == []  # no re-reveals
        assert stream.n_revealed == len(first)
        second = stream.poll(horizon / 2)
        assert all(horizon / 4 <= entry < horizon / 2 for _, entry in second)

    def test_reveal_sequence_is_independent_of_poll_chopping(self, kind, recorded):
        trace, horizon = recorded
        one_shot = make_stream(kind, trace).poll(float("inf"))
        chopped_stream = make_stream(kind, trace)
        chopped: list = []
        for bound in np.linspace(horizon / 7, horizon, 7):
            chopped.extend(chopped_stream.poll(float(bound)))
        chopped.extend(chopped_stream.poll(float("inf")))
        assert chopped == one_shot

    def test_task_ids_are_unique(self, kind, recorded):
        trace, _ = recorded
        revealed = make_stream(kind, trace).poll(float("inf"))
        tasks = [task for task, _ in revealed]
        assert len(tasks) == len(set(tasks))


@pytest.mark.parametrize("kind", STREAM_KINDS)
class TestHorizonSemantics:
    def test_horizon_is_the_largest_revealable_entry(self, kind, recorded):
        trace, _ = recorded
        stream = make_stream(kind, trace)
        revealed = stream.poll(float("inf"))
        assert stream.horizon == max(entry for _, entry in revealed)

    def test_full_reveal_covers_the_task_universe(self, kind, recorded):
        trace, _ = recorded
        stream = make_stream(kind, trace)
        assert not stream.exhausted()
        revealed = stream.poll(float("inf"))
        assert stream.exhausted()
        assert {task for task, _ in revealed} == set(
            stream.trace.skeleton.task_ids
        )

    def test_polling_up_to_the_horizon_leaves_only_boundary_tasks(
        self, kind, recorded
    ):
        trace, _ = recorded
        stream = make_stream(kind, trace)
        horizon = make_stream(kind, trace).horizon
        below = stream.poll(horizon)
        rest = stream.poll(float("inf"))
        assert all(entry < horizon for _, entry in below)
        assert all(entry == horizon for _, entry in rest)
        assert rest  # the horizon task itself is revealed only past it


@pytest.mark.parametrize("kind", STREAM_KINDS)
class TestSubsetStability:
    def test_subset_matches_subset_trace_bitwise(self, kind, recorded):
        trace, horizon = recorded
        stream = make_stream(kind, trace)
        tasks = [task for task, _ in stream.poll(horizon / 2)]
        got = stream.subset(tasks)
        ref = subset_trace(stream.trace, tasks)
        np.testing.assert_array_equal(got.skeleton.task, ref.skeleton.task)
        np.testing.assert_array_equal(got.skeleton.arrival, ref.skeleton.arrival)
        np.testing.assert_array_equal(
            got.skeleton.departure, ref.skeleton.departure
        )
        np.testing.assert_array_equal(got.arrival_observed, ref.arrival_observed)
        np.testing.assert_array_equal(
            got.departure_observed, ref.departure_observed
        )
        for q in range(got.skeleton.n_queues):
            np.testing.assert_array_equal(
                got.skeleton.queue_order(q), ref.skeleton.queue_order(q)
            )

    def test_repeated_subsets_are_identical(self, kind, recorded):
        trace, horizon = recorded
        stream = make_stream(kind, trace)
        tasks = [task for task, _ in stream.poll(horizon / 3)]
        a = stream.subset(tasks)
        b = stream.subset(tasks)
        np.testing.assert_array_equal(a.skeleton.arrival, b.skeleton.arrival)
        np.testing.assert_array_equal(a.skeleton.task, b.skeleton.task)

    def test_subsets_only_cover_revealed_tasks(self, kind, recorded):
        """Subsetting never exposes more than was polled: the estimator
        sees what an online deployment could know, nothing else."""
        trace, horizon = recorded
        stream = make_stream(kind, trace)
        polled = [task for task, _ in stream.poll(horizon / 2)]
        window = stream.subset(polled[:10])
        assert set(window.skeleton.task_ids) == set(polled[:10])


def assert_traces_bitwise(got, ref):
    np.testing.assert_array_equal(got.skeleton.task, ref.skeleton.task)
    np.testing.assert_array_equal(got.skeleton.seq, ref.skeleton.seq)
    np.testing.assert_array_equal(got.skeleton.queue, ref.skeleton.queue)
    np.testing.assert_array_equal(got.skeleton.state, ref.skeleton.state)
    np.testing.assert_array_equal(got.skeleton.arrival, ref.skeleton.arrival)
    np.testing.assert_array_equal(
        got.skeleton.departure, ref.skeleton.departure
    )
    np.testing.assert_array_equal(got.arrival_observed, ref.arrival_observed)
    np.testing.assert_array_equal(
        got.departure_observed, ref.departure_observed
    )
    for q in range(got.skeleton.n_queues):
        np.testing.assert_array_equal(
            got.skeleton.queue_order(q), ref.skeleton.queue_order(q)
        )


class TestAssemblyEquivalenceOracle:
    """The incremental fast path must be indistinguishable from the
    sort-based rebuild it replaced — the oracle is `assemble_trace` over
    the stream's retained record log."""

    @pytest.mark.parametrize("pattern", ("one_shot", "batched", "shuffled"))
    def test_incremental_assembly_matches_the_rebuild(self, pattern, recorded):
        trace, _ = recorded
        stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
        records = trace_to_records(trace)
        if pattern == "one_shot":
            stream.ingest(records)
        elif pattern == "batched":
            for watermark, batch in replay_batches(trace, batch_tasks=16):
                stream.advance_watermark(watermark)
                stream.ingest(batch)
        else:
            rng = np.random.default_rng(7)
            shuffled = [records[i] for i in rng.permutation(len(records))]
            for start in range(0, len(shuffled), 64):
                stream.ingest(shuffled[start:start + 64])
        stream.seal()
        assert stream._assembler is not None  # the fast path stayed active
        oracle = assemble_trace(
            list(stream._final_records.values()),
            n_queues=trace.skeleton.n_queues,
        )
        assert_traces_bitwise(stream.trace, oracle)

    def test_compacted_tail_assembly_matches_the_rebuild(self, recorded):
        """After every compaction step the retained tail's trace is still
        bitwise the rebuild of the retained records."""
        trace, horizon = recorded
        stream = LiveTraceStream(
            n_queues=trace.skeleton.n_queues, retain=horizon / 6
        )
        for watermark, batch in replay_batches(trace, batch_tasks=12):
            stream.advance_watermark(watermark)
            stream.ingest(batch)
            stream.poll(stream.horizon + 1.0)
            stream.compact()
            if stream.n_retained_tasks:
                oracle = assemble_trace(
                    list(stream._final_records.values()),
                    n_queues=trace.skeleton.n_queues,
                )
                assert_traces_bitwise(stream.trace, oracle)
        assert stream.n_compacted_tasks > 0
