"""Tests for streaming sharded estimation (repro.online.streaming)."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference.shard import (
    WarmShardWorkerPool,
    partition_tasks,
    refresh_partition,
)
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import (
    ReplayTraceStream,
    StreamingEstimator,
    WindowedEstimator,
)
from repro.simulate import simulate_network


def make_trace(n_tasks=300, seed=11, fraction=0.25, obs_seed=1):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=fraction).observe(sim.events, random_state=obs_seed)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def assert_windows_equal(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert (a.t_start, a.t_end) == (b.t_start, b.t_end)
        assert (a.n_tasks, a.n_observed_tasks) == (b.n_tasks, b.n_observed_tasks)
        if a.rates is None:
            assert b.rates is None
        else:
            np.testing.assert_array_equal(a.rates, b.rates)


class TestReplayTraceStream:
    def test_reveals_in_entry_order_and_only_on_poll(self):
        trace, horizon = make_trace()
        stream = ReplayTraceStream(trace)
        assert stream.n_revealed == 0
        assert not stream.exhausted()
        first = stream.poll(horizon / 4)
        entries = [entry for _, entry in first]
        assert entries == sorted(entries)
        assert all(entry < horizon / 4 for entry in entries)
        # Polling the same point again reveals nothing new.
        assert stream.poll(horizon / 4) == []
        rest = stream.poll(float("inf"))
        assert stream.exhausted()
        assert len(first) + len(rest) == trace.skeleton.n_tasks

    def test_subset_matches_unindexed_subset(self):
        from repro.events.subset import subset_trace

        trace, horizon = make_trace()
        stream = ReplayTraceStream(trace)
        tasks = [task for task, _ in stream.poll(horizon / 3)]
        fast = stream.subset(tasks)
        slow = subset_trace(trace, tasks)
        np.testing.assert_array_equal(fast.skeleton.task, slow.skeleton.task)
        np.testing.assert_array_equal(fast.skeleton.arrival, slow.skeleton.arrival)
        np.testing.assert_array_equal(fast.arrival_observed, slow.arrival_observed)
        for q in range(fast.skeleton.n_queues):
            np.testing.assert_array_equal(
                fast.skeleton.queue_order(q), slow.skeleton.queue_order(q)
            )


class TestStreamingEquivalence:
    """The acceptance contract: frozen windows match the windowed path
    bitwise at the same seed, for any worker count and any transport."""

    def test_serial_streaming_matches_windowed_bitwise(self):
        trace, horizon = make_trace()
        window = horizon / 5
        ref = WindowedEstimator(
            trace, window=window, stem_iterations=12, random_state=2
        ).run()
        got = StreamingEstimator(
            ReplayTraceStream(trace), window=window, stem_iterations=12,
            random_state=2, repartition="cold",
        ).run()
        assert_windows_equal(ref, got)
        assert any(w.ok for w in got)

    def test_warm_pool_sharded_matches_windowed_bitwise(self):
        """Sharded windows on a warm cross-window pool are bitwise the
        windowed estimator's cold in-process runs."""
        trace, horizon = make_trace()
        window = horizon / 4
        ref = WindowedEstimator(
            trace, window=window, stem_iterations=10, random_state=5, shards=2
        ).run()
        est = StreamingEstimator(
            ReplayTraceStream(trace), window=window, stem_iterations=10,
            random_state=5, shards=2, shard_workers=2, repartition="cold",
        )
        got = est.run()
        assert not est.pooled  # run() closes the pool
        assert_windows_equal(ref, got)

    def test_worker_count_does_not_change_results(self):
        trace, horizon = make_trace(n_tasks=200)
        window = horizon / 3
        results = []
        for workers in (1, 3):
            got = StreamingEstimator(
                ReplayTraceStream(trace), window=window, stem_iterations=8,
                random_state=9, shards=3, shard_workers=workers,
                repartition="cold",
            ).run()
            results.append(got)
        assert_windows_equal(results[0], results[1])

    def test_cold_worker_mode_matches_warm_bitwise(self):
        """warm_workers=False (fresh pool per window) changes no draw."""
        trace, horizon = make_trace(n_tasks=200)
        window = horizon / 3
        warm = StreamingEstimator(
            ReplayTraceStream(trace), window=window, stem_iterations=8,
            random_state=4, shards=2, shard_workers=2, repartition="cold",
        ).run()
        cold = StreamingEstimator(
            ReplayTraceStream(trace), window=window, stem_iterations=8,
            random_state=4, shards=2, shard_workers=2, repartition="cold",
            warm_workers=False,
        ).run()
        assert_windows_equal(warm, cold)

    def test_incremental_first_window_matches_windowed(self):
        """Incremental re-partitioning degenerates to the cold partition on
        the first window, so the frozen-window contract holds there too."""
        trace, horizon = make_trace()
        window = horizon / 4
        ref = WindowedEstimator(
            trace, window=window, stem_iterations=10, random_state=5, shards=2
        ).run()
        got = StreamingEstimator(
            ReplayTraceStream(trace), window=window, stem_iterations=10,
            random_state=5, shards=2, shard_workers=2,
            repartition="incremental",
        ).run()
        np.testing.assert_array_equal(ref[0].rates, got[0].rates)
        # Later windows use a different (equally exact) scan order; they
        # must still estimate every window the reference estimated.
        assert [w.ok for w in ref] == [w.ok for w in got]
        for w in got:
            if w.ok:
                assert np.all(np.isfinite(w.rates)) and np.all(w.rates > 0)


class TestWarmReuse:
    def test_overlapping_windows_keep_middle_shards_warm(self):
        """With step < window and incremental re-partitioning, shards away
        from the window edges keep their structure — workers reuse their
        kernels and adopt only fresh times."""
        trace, horizon = make_trace(n_tasks=600, fraction=0.3)
        est = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon / 3, step=horizon / 9,
            stem_iterations=6, random_state=5, shards=4, shard_workers=2,
            repartition="incremental",
        )
        got = est.run()
        sharded = [w for w in got if w.ok and w.n_shards > 1]
        assert sharded, "no sharded windows ran"
        # First sharded window is all full rebuilds ...
        assert sharded[0].n_warm_shards == 0
        assert sharded[0].n_migrated_shards == sharded[0].n_shards
        # ... and warm reuse fires on later overlapping windows.
        assert sum(w.n_warm_shards for w in sharded[1:]) > 0

    def test_incremental_partition_keeps_surviving_tasks_in_place(self):
        trace, _ = make_trace(n_tasks=200)
        skeleton = trace.skeleton
        part = partition_tasks(skeleton, 4)
        refreshed = refresh_partition(skeleton, part.assignment, 4)
        # Same task universe, nothing moved: the refresh is the identity.
        assert refreshed.assignment == part.assignment

    def test_refresh_partition_covers_new_tasks_and_keeps_shards_nonempty(self):
        trace, _ = make_trace(n_tasks=200)
        skeleton = trace.skeleton
        part = partition_tasks(skeleton, 4)
        # Pretend half the tasks are new (assignment unknown).
        stale = {
            t: s for t, s in part.assignment.items() if t % 2 == 0
        }
        refreshed = refresh_partition(skeleton, stale, 4)
        assert set(refreshed.assignment) == set(part.assignment)
        assert refreshed.n_shards == 4
        assert all(len(block) > 0 for block in refreshed.shards)
        # Surviving tasks stayed put unless the refine pass moved them for
        # a strictly smaller cut; the bulk must not churn.
        kept = sum(
            1 for t, s in stale.items() if refreshed.assignment[t] == s
        )
        assert kept >= int(0.8 * len(stale))

    def test_refresh_partition_refills_emptied_shard(self):
        trace, _ = make_trace(n_tasks=120)
        skeleton = trace.skeleton
        tasks = sorted(skeleton.task_ids)
        # Previous assignment crams everything into shards 0 and 1 of 3:
        # shard 2's tasks all "aged out".
        stale = {t: i % 2 for i, t in enumerate(tasks)}
        refreshed = refresh_partition(skeleton, stale, 3)
        assert refreshed.n_shards == 3
        assert all(len(block) > 0 for block in refreshed.shards)


class TestWorkerCrashRecovery:
    @pytest.mark.slow
    def test_kill9_shard_worker_mid_stream_is_bitwise_transparent(self):
        """Acceptance: kill -9 a shard worker while the stream runs.  The
        next exchange closes the pool; the estimator relaunches it and
        retries the window on the *same* per-window seed child, so every
        frozen-window estimate is bitwise the uninterrupted run's."""
        import os
        import signal

        trace, horizon = make_trace(n_tasks=200)
        kwargs = dict(window=horizon / 3, stem_iterations=6, random_state=7,
                      shards=2, shard_workers=2, repartition="cold")
        ref = StreamingEstimator(ReplayTraceStream(trace), **kwargs).run()

        est = StreamingEstimator(ReplayTraceStream(trace), **kwargs)
        gen = est.estimates()
        got = [next(gen)]  # first window brings the warm pool up
        stats = est.pool_stats()
        assert stats is not None and stats["n_alive"] == 2
        victim = next(pid for pid in est._pool.worker_pids() if pid)
        os.kill(victim, signal.SIGKILL)  # no cleanup, no goodbye
        got.extend(gen)
        est.close()

        assert est.n_worker_relaunches >= 1
        assert est.pool_stats()["n_relaunches"] == est.n_worker_relaunches
        assert_windows_equal(ref, got)

    def test_exhausted_relaunch_budget_fails_the_window_as_data(
        self, monkeypatch
    ):
        """A pool that dies under *every* attempt does not retry forever:
        the relaunch budget (worker_retries) bounds the loop, and the
        window then records the failure as data — the pre-existing
        failed-window contract."""
        import repro.online.streaming as streaming_mod

        trace, horizon = make_trace(n_tasks=200)
        est = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon / 3, stem_iterations=6,
            random_state=7, shards=2, shard_workers=2, repartition="cold",
        )
        attempts = []

        def doomed_run_stem(*args, **kwargs):
            attempts.append(1)
            pool = kwargs.get("shard_pool")
            if pool is not None:
                pool.close()  # every attempt loses its worker host
            raise InferenceError("worker host lost")

        monkeypatch.setattr(streaming_mod, "run_stem", doomed_run_stem)
        gen = est.estimates()
        w0 = next(gen)
        est.close()
        assert not w0.ok and "worker host lost" in w0.failure
        # One original attempt + worker_retries relaunched ones, no more.
        assert est.worker_retries == 1
        assert len(attempts) == 1 + est.worker_retries
        assert est.n_worker_relaunches == est.worker_retries


class TestStreamingLifecycle:
    def test_pool_survives_windows_and_closes_once(self):
        trace, horizon = make_trace(n_tasks=200)
        est = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon / 3, stem_iterations=6,
            random_state=7, shards=2, shard_workers=2,
        )
        first = None
        pool = None
        for w in est.estimates():
            first = first or w
            if est.pooled:
                pool = est._pool
        assert pool is not None and not pool.closed
        est.close()
        assert pool.closed
        est.close()  # idempotent

    def test_pool_is_rebuilt_after_a_worker_failure(self):
        """A dead pool must not poison every later window."""
        trace, horizon = make_trace(n_tasks=200)
        est = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon / 3, stem_iterations=6,
            random_state=7, shards=2, shard_workers=2,
        )
        gen = est.estimates()
        w0 = next(gen)
        assert w0.ok
        est._pool.close()  # simulate a worker crash between windows
        w1 = next(gen)
        assert w1.ok
        est.close()

    def test_run_closes_the_owned_transport(self):
        """No listener-fd leak: run() releases the transport it was given."""
        from repro.inference.transport import SocketTransport

        trace, horizon = make_trace(n_tasks=120)
        transport = SocketTransport()
        StreamingEstimator(
            ReplayTraceStream(trace), window=horizon, stem_iterations=5,
            random_state=1, shards=2, shard_workers=1, transport=transport,
        ).run()
        assert transport._listener.fileno() == -1  # listener closed

    def test_validation(self):
        trace, _ = make_trace(n_tasks=120)
        stream = ReplayTraceStream(trace)
        with pytest.raises(InferenceError):
            StreamingEstimator(stream, window=-1.0)
        with pytest.raises(InferenceError):
            StreamingEstimator(stream, window=1.0, step=0.0)
        with pytest.raises(InferenceError):
            StreamingEstimator(stream, window=1.0, shards=0)
        with pytest.raises(InferenceError):  # config error, not "all windows failed"
            StreamingEstimator(stream, window=1.0, stem_iterations=0)
        with pytest.raises(InferenceError):  # workers without shards: silent no-op
            StreamingEstimator(stream, window=1.0, shard_workers=2)
        with pytest.raises(InferenceError):
            StreamingEstimator(stream, window=1.0, shards=2, shard_workers=0)
        with pytest.raises(InferenceError):
            StreamingEstimator(stream, window=1.0, repartition="sometimes")
        with pytest.raises(InferenceError, match="kernel"):
            StreamingEstimator(stream, window=1.0, kernel="simd")
        with pytest.raises(InferenceError, match="thread"):
            StreamingEstimator(stream, window=1.0, threads=0)

    def test_kernel_and_threads_do_not_change_estimates(self):
        """kernel='native'/threads=2 windows agree with the defaults
        (bitwise when native falls back; threads are always bitwise)."""
        from repro.inference.native import NUMBA_AVAILABLE

        trace, horizon = make_trace(n_tasks=150)
        ref = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon / 2, stem_iterations=5,
            random_state=7,
        ).run()
        got = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon / 2, stem_iterations=5,
            random_state=7, kernel="native", threads=2,
        ).run()
        if not NUMBA_AVAILABLE:
            assert_windows_equal(ref, got)
        else:
            for a, b in zip(ref, got):
                if a.rates is not None:
                    np.testing.assert_allclose(b.rates, a.rates, rtol=1e-6)

    def test_checkpoint_restores_across_kernel_config_versions(self):
        """A pre-kernel/threads checkpoint (v1 config) restores into a
        default-configured estimator; an explicit non-default kernel
        still refuses a default checkpoint."""
        trace, horizon = make_trace(n_tasks=120)
        est = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon, stem_iterations=5,
            random_state=3,
        )
        state = est.state_dict()
        assert state["config"]["kernel"] == "array"
        assert state["config"]["threads"] == 1
        # Strip the new keys to emulate a checkpoint from before they
        # existed: defaults must be assumed, not a mismatch raised.
        del state["config"]["kernel"]
        del state["config"]["threads"]
        fresh = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon, stem_iterations=5,
            random_state=3,
        )
        fresh.load_state_dict(state)
        mismatched = StreamingEstimator(
            ReplayTraceStream(trace), window=horizon, stem_iterations=5,
            random_state=3, threads=2,
        )
        with pytest.raises(InferenceError, match="captured under config"):
            mismatched.load_state_dict(state)

    def test_warm_pool_reuse_across_runs_is_transparent(self):
        """Adoption diffs survive a recall: a second pass over the same
        stream content reuses every shard's kernel (all-'times' windows)
        and still matches the first pass bitwise."""
        trace, horizon = make_trace(n_tasks=200)
        window = horizon  # one frozen window covering everything
        pool = WarmShardWorkerPool(2)
        try:
            runs = []
            for _ in range(2):
                est = StreamingEstimator(
                    ReplayTraceStream(trace), window=window, stem_iterations=6,
                    random_state=3, shards=2, shard_workers=2,
                )
                est._pool = pool  # share one warm pool across runs
                runs.append(list(est.estimates()))
            assert_windows_equal(runs[0], runs[1])
            # Second run adopted every shard warm.
            assert runs[1][0].n_warm_shards == runs[1][0].n_shards
            assert runs[1][0].n_migrated_shards == 0
        finally:
            pool.close()
